package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"panorama/internal/core"
	"panorama/internal/obs"
)

// mCacheLoadSkipped counts persisted entries the cache refused to load:
// unreadable files, corrupt or foreign content, and files whose name no
// longer matches the fingerprint inside. Silent skips hid operator
// errors (a bad volume, a truncating copy); now they're visible.
var mCacheLoadSkipped = obs.NewCounter("panorama_cache_load_skipped_total",
	"Persisted cache entries skipped at load (unreadable, corrupt, or foreign).")

// Entry is one cached mapping result, addressed by the canonical
// fingerprint of the computation that produced it (see Key).
type Entry struct {
	Fingerprint string       `json:"fingerprint"`
	Summary     core.Summary `json:"summary"`
}

// Cache is a content-addressed result cache: an in-memory LRU over
// mapping summaries, optionally persisted to a directory (one file per
// entry, written atomically via rename). New entries are written in
// the versioned binary codec as <fingerprint>.bin; directories
// populated by older builds hold <fingerprint>.json, and load accepts
// both formats side by side, so a cache directory survives the format
// change without migration. Mapping results are deterministic
// functions of their fingerprint, so entries never need invalidation —
// only eviction.
//
// All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // fingerprint -> lru element holding *Entry
	lru     *list.List               // front = most recently used
	dir     string                   // "" = memory only

	loadSkipped int // entries skipped by loadDir (corrupt/foreign/unreadable)
}

// DefaultCacheSize is the LRU capacity used when a caller passes
// size <= 0.
const DefaultCacheSize = 4096

// NewCache returns a cache holding up to size entries in memory
// (size <= 0 means DefaultCacheSize). When dir is non-empty it is
// created if needed and every Put is persisted there; entries already
// in the directory are loaded eagerly (most recently modified first,
// up to the memory capacity).
func NewCache(size int, dir string) (*Cache, error) {
	if size <= 0 {
		size = DefaultCacheSize
	}
	c := &Cache{
		cap:     size,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		dir:     dir,
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
		if err := c.loadDir(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Get returns the entry for fp and marks it most recently used.
func (c *Cache) Get(fp string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return Entry{}, false
	}
	c.lru.MoveToFront(el)
	return *el.Value.(*Entry), true
}

// Put stores an entry under its fingerprint, evicting the least
// recently used entry beyond capacity, and persists it when the cache
// is disk-backed. Persistence failures are returned but leave the
// in-memory entry in place (the service keeps serving; the operator
// sees the error in the log).
func (c *Cache) Put(e Entry) error {
	c.mu.Lock()
	if el, ok := c.entries[e.Fingerprint]; ok {
		el.Value = &e
		c.lru.MoveToFront(el)
	} else {
		c.entries[e.Fingerprint] = c.lru.PushFront(&e)
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*Entry).Fingerprint)
		}
	}
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil
	}
	return c.persist(dir, e)
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// LoadSkipped reports how many persisted entries the load pass refused
// (corrupt, foreign, or unreadable files).
func (c *Cache) LoadSkipped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loadSkipped
}

// persist writes the entry to dir atomically: a temp file in the same
// directory, fsync-free (the cache is a cache), then rename. A crash
// mid-write leaves either the old file or a stray *.tmp that load
// skips (and eventually sweeps, see staleTmpAge).
func (c *Cache) persist(dir string, e Entry) error {
	data, err := e.MarshalBinary()
	if err != nil {
		return fmt.Errorf("service: encoding cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(dir, e.Fingerprint+".*.tmp")
	if err != nil {
		return fmt.Errorf("service: cache write: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("service: cache write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, e.Fingerprint+".bin")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache write: %w", err)
	}
	return nil
}

// staleTmpAge is how old a stray *.tmp file must be before loadDir
// removes it. A temp file only exists between CreateTemp and the
// rename in persist, so anything this old is debris from a crashed
// writer — but a fresh one may belong to a live writer in another
// process sharing the directory, and is left alone.
const staleTmpAge = time.Hour

// decodeEntry decodes one persisted cache file by its extension:
// ".bin" is the versioned binary codec, ".json" the pre-codec format
// kept readable so existing cache directories survive upgrades.
func decodeEntry(name string, data []byte) (Entry, bool) {
	var e Entry
	switch filepath.Ext(name) {
	case ".bin":
		if e.UnmarshalBinary(data) != nil {
			return Entry{}, false
		}
	case ".json":
		if json.Unmarshal(data, &e) != nil {
			return Entry{}, false
		}
	default:
		return Entry{}, false
	}
	return e, e.Fingerprint != ""
}

// loadDir fills the LRU from the persistence directory, newest first
// so that when the directory holds more entries than the memory
// capacity the most recently written ones survive. Stray *.tmp files
// older than staleTmpAge (crashed writers) are removed on the way.
func (c *Cache) loadDir() error {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("service: cache dir: %w", err)
	}
	type candidate struct {
		name  string
		mtime int64
	}
	var cands []candidate
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		ext := filepath.Ext(de.Name())
		if ext != ".json" && ext != ".bin" && ext != ".tmp" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		if ext == ".tmp" {
			if time.Since(info.ModTime()) > staleTmpAge {
				os.Remove(filepath.Join(c.dir, de.Name()))
			}
			continue
		}
		cands = append(cands, candidate{de.Name(), info.ModTime().UnixNano()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mtime > cands[j].mtime })
	if len(cands) > c.cap {
		cands = cands[:c.cap]
	}
	// Insert oldest first so LRU order matches write order. A
	// fingerprint present in both formats (a directory written by two
	// builds) keeps only the newer file's content.
	skip := func(name, why string) {
		c.loadSkipped++
		mCacheLoadSkipped.Inc()
		log.Printf("service: cache: skipping %s: %s", name, why)
	}
	for i := len(cands) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(c.dir, cands[i].name))
		if err != nil {
			skip(cands[i].name, err.Error())
			continue
		}
		e, ok := decodeEntry(cands[i].name, data)
		if !ok {
			skip(cands[i].name, "corrupt or foreign content") // don't fail startup
			continue
		}
		if strings.TrimSuffix(cands[i].name, filepath.Ext(cands[i].name)) != e.Fingerprint {
			skip(cands[i].name, "file name does not match the fingerprint inside")
			continue
		}
		if el, dup := c.entries[e.Fingerprint]; dup {
			el.Value = &e
			c.lru.MoveToFront(el)
			continue
		}
		c.entries[e.Fingerprint] = c.lru.PushFront(&e)
	}
	if c.loadSkipped > 0 {
		log.Printf("service: cache: loaded %d entr(ies), skipped %d corrupt/foreign file(s) in %s",
			c.lru.Len(), c.loadSkipped, c.dir)
	}
	return nil
}
