package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"panorama/internal/core"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id    int
	event string
	data  string
}

// sseReader incrementally parses frames off a live SSE response body,
// skipping comment keep-alives.
type sseReader struct {
	sc *bufio.Scanner
}

func newSSEReader(body io.Reader) *sseReader {
	return &sseReader{sc: bufio.NewScanner(body)}
}

// next returns the next complete frame, or ok=false at end of stream.
func (r *sseReader) next(t *testing.T) (sseFrame, bool) {
	t.Helper()
	var f sseFrame
	seen := false
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case line == "":
			if seen {
				return f, true
			}
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(line[4:])
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			f.id = n
			seen = true
		case strings.HasPrefix(line, "event: "):
			f.event = line[7:]
			seen = true
		case strings.HasPrefix(line, "data: "):
			f.data = line[6:]
			seen = true
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return sseFrame{}, false
}

// drainSSE reads frames until the stream closes.
func drainSSE(t *testing.T, body io.Reader) []sseFrame {
	t.Helper()
	r := newSSEReader(body)
	var out []sseFrame
	for {
		f, ok := r.next(t)
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

// openStream GETs an SSE endpoint with an optional Last-Event-ID.
func openStream(t *testing.T, ctx context.Context, url string, lastID int) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	return resp
}

// The full event lifecycle over one stream: queued, running, done —
// contiguous ids from 1, stream closed by the server after the
// terminal event.
func TestJobEventsStream(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	run := func(ctx context.Context, job *Job) (core.Summary, error) {
		close(started)
		<-release
		return core.Summary{Kernel: "stub", Success: true}, nil
	}
	srv, err := New(Options{Workers: 1, QueueSize: 4, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, view := postMap(t, ts.URL, `{"kernel":"fir","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	<-started

	resp := openStream(t, context.Background(), ts.URL+"/v1/jobs/"+view.ID+"/events", 0)
	defer resp.Body.Close()
	close(release)

	frames := drainSSE(t, resp.Body)
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3: %+v", len(frames), frames)
	}
	wantTypes := []string{"queued", "running", "done"}
	for i, f := range frames {
		if f.id != i+1 || f.event != wantTypes[i] {
			t.Fatalf("frame %d = id %d event %q, want id %d event %q", i, f.id, f.event, i+1, wantTypes[i])
		}
		var ev Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d data: %v", i, err)
		}
		if ev.Seq != f.id || string(ev.Type) != f.event || ev.Job.ID != view.ID {
			t.Fatalf("frame %d payload disagrees with framing: %+v", i, ev)
		}
	}
	var last Event
	if err := json.Unmarshal([]byte(frames[2].data), &last); err != nil {
		t.Fatal(err)
	}
	if last.Job.Status != JobDone || last.Job.Result == nil {
		t.Fatalf("terminal event carries no result: %+v", last.Job)
	}

	st := getStats(t, ts.URL)
	if st.SSEStreams != 1 || st.SSESent != 3 || st.SSEActive != 0 {
		t.Fatalf("sse stats: %+v", st)
	}

	// Unknown job → 404, not a hung stream.
	r2, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: status %d", r2.StatusCode)
	}
}

// Disconnect mid-job and resume with Last-Event-ID: the second stream
// replays only the missed suffix, and a resume past the terminal event
// closes immediately instead of hanging.
func TestJobEventsResume(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	run := func(ctx context.Context, job *Job) (core.Summary, error) {
		close(started)
		<-release
		return core.Summary{Kernel: "stub", Success: true}, nil
	}
	srv, err := New(Options{Workers: 1, QueueSize: 4, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, view := postMap(t, ts.URL, `{"kernel":"fir","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	<-started

	// First client: read queued + running, then drop the connection.
	ctx1, cancel1 := context.WithCancel(context.Background())
	resp1 := openStream(t, ctx1, ts.URL+"/v1/jobs/"+view.ID+"/events", 0)
	r1 := newSSEReader(resp1.Body)
	cursor := 0
	for i := 0; i < 2; i++ {
		f, ok := r1.next(t)
		if !ok {
			t.Fatalf("stream ended after %d frames", i)
		}
		cursor = f.id
	}
	cancel1()
	resp1.Body.Close()

	close(release)
	waitForStatus(t, ts.URL, view.ID, JobDone)

	// Second client resumes where the first left off: only the
	// terminal event remains.
	resp2 := openStream(t, context.Background(), ts.URL+"/v1/jobs/"+view.ID+"/events", cursor)
	frames := drainSSE(t, resp2.Body)
	resp2.Body.Close()
	if len(frames) != 1 || frames[0].id != 3 || frames[0].event != "done" {
		t.Fatalf("resumed frames: %+v, want exactly [done id=3]", frames)
	}

	// Resuming past the terminal event: empty stream, clean close.
	resp3 := openStream(t, context.Background(), ts.URL+"/v1/jobs/"+view.ID+"/events", 3)
	if frames := drainSSE(t, resp3.Body); len(frames) != 0 {
		t.Fatalf("resume past terminal produced %+v", frames)
	}
	resp3.Body.Close()

	if st := getStats(t, ts.URL); st.SSEResumed != 2 {
		t.Fatalf("sseResumed = %d, want 2", st.SSEResumed)
	}
}

// The crash case: a client is streaming when the process dies mid-run.
// After journal recovery in a fresh process, resuming with the
// pre-crash Last-Event-ID yields the new attempt's running event and
// exactly one terminal event — nothing duplicated, nothing missed.
func TestJobEventsResumeAcrossRestart(t *testing.T) {
	jdir := t.TempDir()
	started := make(chan struct{})
	srv1, err := New(Options{
		Workers: 1, QueueSize: 4, JournalDir: jdir, JournalNoSync: true, RetryBase: -1,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			close(started)
			<-ctx.Done()
			return core.Summary{}, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	code, view := postMap(t, ts1.URL, `{"kernel":"fir","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	<-started

	// Stream up to the running event, as a live dashboard would.
	ctx1, cancel1 := context.WithCancel(context.Background())
	resp1 := openStream(t, ctx1, ts1.URL+"/v1/jobs/"+view.ID+"/events", 0)
	r1 := newSSEReader(resp1.Body)
	cursor := 0
	for i := 0; i < 2; i++ {
		f, ok := r1.next(t)
		if !ok {
			t.Fatalf("stream ended early")
		}
		cursor = f.id
	}
	if cursor != 2 {
		t.Fatalf("pre-crash cursor = %d, want 2 (queued, running)", cursor)
	}
	cancel1()
	resp1.Body.Close()
	ts1.Close()

	srv1.crashForTest()

	// Process 2: same journal, an executor that succeeds.
	srv2, err := New(Options{
		Workers: 1, QueueSize: 4, JournalDir: jdir, JournalNoSync: true, RetryBase: -1,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			return core.Summary{Kernel: "recovered", Success: true}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	waitForStatus(t, ts2.URL, view.ID, JobDone)

	// Resume with the pre-crash cursor against the new process.
	resp2 := openStream(t, context.Background(), ts2.URL+"/v1/jobs/"+view.ID+"/events", cursor)
	frames := drainSSE(t, resp2.Body)
	resp2.Body.Close()
	if len(frames) != 2 {
		t.Fatalf("resumed frames after restart: %+v, want [running done]", frames)
	}
	if frames[0].id != 3 || frames[0].event != "running" {
		t.Fatalf("frame 0 = %+v, want running id=3 (attempt 2)", frames[0])
	}
	if frames[1].id != 4 || frames[1].event != "done" {
		t.Fatalf("frame 1 = %+v, want done id=4", frames[1])
	}

	// A fresh client replaying from 0 sees the full history once: the
	// journal-synthesized prefix marked recovered, one terminal event.
	resp3 := openStream(t, context.Background(), ts2.URL+"/v1/jobs/"+view.ID+"/events", 0)
	all := drainSSE(t, resp3.Body)
	resp3.Body.Close()
	if len(all) != 4 {
		t.Fatalf("full replay: %d frames, want 4: %+v", len(all), all)
	}
	terminals := 0
	for i, f := range all {
		if f.id != i+1 {
			t.Fatalf("replay ids not contiguous: %+v", all)
		}
		var ev Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatal(err)
		}
		if terminalStatus(ev.Type) {
			terminals++
		}
		if i < 2 && !ev.Recovered {
			t.Fatalf("frame %d not marked recovered: %+v", i, ev)
		}
	}
	if terminals != 1 {
		t.Fatalf("replay carries %d terminal events, want exactly 1", terminals)
	}
}

// The batch aggregate stream: one "item" event per item in index
// order, then the "batch" summary; Last-Event-ID resumes mid-batch.
func TestBatchEventsStream(t *testing.T) {
	run := func(ctx context.Context, job *Job) (core.Summary, error) {
		return core.Summary{Kernel: "stub", Success: true}, nil
	}
	srv, err := New(Options{Workers: 2, QueueSize: 16, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, bv := postBatch(t, ts.URL, `{"items":[
		{"kernel":"fir","seed":1},
		{"kernel":"fir","seed":2},
		{"kernel":"fir","seed":3}
	]}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}

	resp := openStream(t, context.Background(), ts.URL+"/v1/batch/"+bv.ID+"/events", 0)
	frames := drainSSE(t, resp.Body)
	resp.Body.Close()
	if len(frames) != 4 {
		t.Fatalf("batch stream: %d frames, want 4: %+v", len(frames), frames)
	}
	for i := 0; i < 3; i++ {
		if frames[i].id != i+1 || frames[i].event != "item" {
			t.Fatalf("frame %d = %+v, want item id=%d", i, frames[i], i+1)
		}
		var iv BatchItemView
		if err := json.Unmarshal([]byte(frames[i].data), &iv); err != nil {
			t.Fatal(err)
		}
		if iv.Index != i || iv.Status != JobDone {
			t.Fatalf("item frame %d: %+v", i, iv)
		}
	}
	if frames[3].event != "batch" || frames[3].id != 4 {
		t.Fatalf("final frame: %+v", frames[3])
	}
	var final BatchView
	if err := json.Unmarshal([]byte(frames[3].data), &final); err != nil {
		t.Fatal(err)
	}
	if !final.Done || final.ID != bv.ID {
		t.Fatalf("final batch view: %+v", final)
	}

	// Resume after item 2: only item 3 and the summary replay.
	resp2 := openStream(t, context.Background(), ts.URL+"/v1/batch/"+bv.ID+"/events", 2)
	tail := drainSSE(t, resp2.Body)
	resp2.Body.Close()
	if len(tail) != 2 || tail[0].id != 3 || tail[1].event != "batch" {
		t.Fatalf("resumed batch stream: %+v", tail)
	}

	// Unknown batch → 404.
	r3, err := http.Get(ts.URL + "/v1/batch/batch-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown batch events: status %d", r3.StatusCode)
	}
}

// Heartbeats keep an idle stream alive without fabricating events: a
// short heartbeat interval produces comment lines, which the parser
// skips, and the frames still arrive exactly once.
func TestJobEventsHeartbeat(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	run := func(ctx context.Context, job *Job) (core.Summary, error) {
		close(started)
		<-release
		return core.Summary{Kernel: "stub", Success: true}, nil
	}
	srv, err := New(Options{Workers: 1, QueueSize: 4, Run: run, SSEHeartbeat: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, view := postMap(t, ts.URL, `{"kernel":"fir","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	<-started

	resp := openStream(t, context.Background(), ts.URL+"/v1/jobs/"+view.ID+"/events", 0)
	defer resp.Body.Close()
	// Let a few heartbeats through while the job idles mid-run.
	time.Sleep(50 * time.Millisecond)
	close(release)
	frames := drainSSE(t, resp.Body)
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3: %+v", len(frames), frames)
	}
	if fmt.Sprintf("%s,%s,%s", frames[0].event, frames[1].event, frames[2].event) != "queued,running,done" {
		t.Fatalf("frame order: %+v", frames)
	}
}
