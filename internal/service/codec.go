package service

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"panorama/internal/core"
)

// Binary codec for cache entries: the persisted form of one mapping
// result under the content-addressed cache directory. The layout
// (version 1) is
//
//	magic "PCEN", version byte
//	fingerprint: uvarint length, raw bytes
//	summary, fields in declaration order:
//	  Kernel string, Success byte, MII/II/Candidates/PartitionK as
//	  zigzag varints, QoM + the four wall-time floats as little-endian
//	  IEEE-754 bits, Guidance and BudgetStage strings, then uvarint
//	  stage count and per stage (Stage string, zigzag varint WallNS,
//	  Note string)
//
// Strings are uvarint length + raw bytes throughout. The entry's cache
// identity is the fingerprint alone — the codec only changes how the
// bytes at that address are spelled, never the address.
const (
	entryMagic   = "PCEN"
	entryVersion = 1
)

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// MarshalBinary encodes the entry in the versioned varint wire format.
func (e *Entry) MarshalBinary() ([]byte, error) {
	s := &e.Summary
	buf := make([]byte, 0, 96+len(e.Fingerprint)+len(s.Kernel)+16*len(s.Stages))
	buf = append(buf, entryMagic...)
	buf = append(buf, entryVersion)
	buf = appendString(buf, e.Fingerprint)

	buf = appendString(buf, s.Kernel)
	if s.Success {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendVarint(buf, int64(s.MII))
	buf = binary.AppendVarint(buf, int64(s.II))
	buf = binary.AppendVarint(buf, int64(s.Candidates))
	buf = binary.AppendVarint(buf, int64(s.PartitionK))
	buf = appendFloat(buf, s.QoM)
	buf = appendFloat(buf, s.ClusteringMS)
	buf = appendFloat(buf, s.ClusterMapMS)
	buf = appendFloat(buf, s.LowerMS)
	buf = appendFloat(buf, s.TotalMS)
	buf = appendString(buf, s.Guidance)
	buf = appendString(buf, s.BudgetStage)
	buf = binary.AppendUvarint(buf, uint64(len(s.Stages)))
	for _, st := range s.Stages {
		buf = appendString(buf, st.Stage)
		buf = binary.AppendVarint(buf, int64(st.Wall))
		buf = appendString(buf, st.Note)
	}
	return buf, nil
}

// entryReader mirrors the dfg codec's reader: remember the first
// error, return zeros after it.
type entryReader struct {
	data []byte
	off  int
	err  error
}

func (r *entryReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("service: entry codec: "+format, args...)
	}
}

func (r *entryReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *entryReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *entryReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("string length %d exceeds remaining %d bytes", n, len(r.data)-r.off)
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *entryReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.data)-r.off < 8 {
		r.fail("truncated float at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

func (r *entryReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("truncated byte at offset %d", r.off)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// UnmarshalBinary decodes an entry previously written by
// MarshalBinary. Arbitrary input is safe: string lengths and the stage
// count are bounded by the payload size before any allocation.
func (e *Entry) UnmarshalBinary(data []byte) error {
	if len(data) < len(entryMagic)+1 || string(data[:len(entryMagic)]) != entryMagic {
		return fmt.Errorf("service: entry codec: bad magic")
	}
	if v := data[len(entryMagic)]; v != entryVersion {
		return fmt.Errorf("service: entry codec: unsupported version %d", v)
	}
	r := &entryReader{data: data, off: len(entryMagic) + 1}

	var dec Entry
	dec.Fingerprint = r.str()
	s := &dec.Summary
	s.Kernel = r.str()
	s.Success = r.byte() != 0
	s.MII = int(r.varint())
	s.II = int(r.varint())
	s.Candidates = int(r.varint())
	s.PartitionK = int(r.varint())
	s.QoM = r.float()
	s.ClusteringMS = r.float()
	s.ClusterMapMS = r.float()
	s.LowerMS = r.float()
	s.TotalMS = r.float()
	s.Guidance = r.str()
	s.BudgetStage = r.str()
	nStages := r.uvarint()
	if r.err == nil && nStages > uint64(len(r.data)-r.off)/3 {
		r.fail("stage count %d cannot fit in %d remaining bytes", nStages, len(r.data)-r.off)
	}
	if r.err != nil {
		return r.err
	}
	if nStages > 0 {
		s.Stages = make([]core.StageRecord, 0, nStages)
		for i := uint64(0); i < nStages; i++ {
			st := core.StageRecord{Stage: r.str()}
			st.Wall = time.Duration(r.varint())
			st.Note = r.str()
			if r.err != nil {
				return r.err
			}
			s.Stages = append(s.Stages, st)
		}
	}
	if r.off != len(data) {
		return fmt.Errorf("service: entry codec: %d trailing bytes", len(data)-r.off)
	}
	*e = dec
	return nil
}
