package service

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"panorama/internal/core"
	"panorama/internal/journal"
	"panorama/internal/obs"
)

// BatchRequest is the POST /v1/batch wire format: many mapping
// requests admitted (or rejected) as one decision. The top-level
// Arch/Mapper/TimeoutMS fields are defaults applied to items that
// leave the corresponding field empty; Wait blocks the response until
// every admitted item is terminal.
type BatchRequest struct {
	Items []Request `json:"items"`

	Arch      string `json:"arch,omitempty"`
	Mapper    string `json:"mapper,omitempty"`
	TimeoutMS int64  `json:"timeoutMS,omitempty"`
	Wait      bool   `json:"wait,omitempty"`
}

// BatchItemView is the wire form of one batch item's outcome. Cache
// distinguishes how the item was satisfied without a fresh
// computation: "hit" (result cache), "coalesced" (attached to a job
// already in flight before the batch), "dup" (same fingerprint as an
// earlier item of this batch). Items that failed resolution carry
// Error and no job.
type BatchItemView struct {
	Index       int           `json:"index"`
	JobID       string        `json:"jobID,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Status      JobStatus     `json:"status,omitempty"`
	Cache       string        `json:"cache,omitempty"`
	Result      *core.Summary `json:"result,omitempty"`
	Error       *ErrorInfo    `json:"error,omitempty"`
}

// BatchView is the wire form of a batch (POST /v1/batch response and
// the terminal "batch" SSE event).
type BatchView struct {
	ID        string          `json:"id"`
	Items     []BatchItemView `json:"items"`
	Hits      int             `json:"hits"`
	Coalesced int             `json:"coalesced"`
	Dups      int             `json:"dups"`
	Enqueued  int             `json:"enqueued"`
	Errors    int             `json:"errors"`
	Done      bool            `json:"done"`
}

// Batch is one accepted POST /v1/batch admission: the per-item
// outcomes plus the admission trace (served by GET /v1/trace/{id}).
type Batch struct {
	// ID addresses the batch (GET /v1/batch/{id},
	// GET /v1/batch/{id}/events, GET /v1/trace/{id}).
	ID string

	items   []*batchItem
	trace   *obs.Trace
	created time.Time
}

// batchItem is one item's resolution: exactly one of entry (cache
// hit), job (new/coalesced/dup computation) or err (rejected at
// resolve time) is set.
type batchItem struct {
	fingerprint string
	cache       string // "", "hit", "coalesced", "dup"
	entry       *Entry
	job         *Job
	err         error
	errClass    string
	errValid    []string // accepted values for enumerated-field errors
}

// itemView snapshots item i for the wire.
func (b *Batch) itemView(i int) BatchItemView {
	it := b.items[i]
	v := BatchItemView{Index: i, Fingerprint: it.fingerprint, Cache: it.cache}
	switch {
	case it.err != nil:
		v.Error = &ErrorInfo{Class: it.errClass, Message: it.err.Error(), Valid: it.errValid}
	case it.entry != nil:
		v.Status = JobDone
		v.Result = &it.entry.Summary
	case it.job != nil:
		jv := it.job.View()
		v.JobID = jv.ID
		v.Status = jv.Status
		v.Result = jv.Result
		v.Error = jv.Error
	}
	return v
}

// View snapshots the whole batch for the wire.
func (b *Batch) View() BatchView {
	v := BatchView{ID: b.ID, Items: make([]BatchItemView, len(b.items)), Done: true}
	for i, it := range b.items {
		iv := b.itemView(i)
		v.Items[i] = iv
		switch it.cache {
		case "hit":
			v.Hits++
		case "coalesced":
			v.Coalesced++
		case "dup":
			v.Dups++
		}
		switch {
		case it.err != nil:
			v.Errors++
		case it.job != nil:
			if it.cache == "" {
				v.Enqueued++
			}
			if !terminalStatus(iv.Status) {
				v.Done = false
			}
		}
	}
	return v
}

// Batch returns a previously accepted batch by id.
func (s *Server) Batch(id string) (*Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// submitBatch runs one admission decision over the resolved items
// (nil slots are items the caller already rejected at resolve time).
// The decision is atomic: either every item that needs a fresh
// computation fits the queue — and all of them are journaled and
// enqueued — or nothing is admitted and the whole batch is rejected
// with ErrOverloaded (ErrShedding/ErrDraining likewise reject it
// wholesale). Cache hits never reject; identical fingerprints within
// the batch dedup onto one job; fingerprints already in flight
// coalesce onto the running job.
func (s *Server) submitBatch(reqs []*resolved) ([]Outcome, error) {
	outs := make([]Outcome, len(reqs))
	type pendingItem struct {
		i    int
		req  *resolved
		blob []byte
	}
	var pending []pendingItem
	for i, req := range reqs {
		if req == nil {
			continue
		}
		if e, ok := s.cache.Get(req.fingerprint); ok {
			outs[i] = Outcome{Entry: &e}
			continue
		}
		pending = append(pending, pendingItem{i: i, req: req})
	}

	if len(pending) > 0 {
		switch s.breaker.state() {
		case breakerShed:
			s.stats.shed.Add(int64(len(pending)))
			return nil, ErrShedding
		case breakerDegrade:
			for k := range pending {
				req := pending[k].req
				if m := DegradeMapper(req.mapper); m != "" {
					req = req.withMapper(m)
					pending[k].req = req
					s.stats.degraded.Add(1)
					if e, ok := s.cache.Get(req.fingerprint); ok {
						outs[pending[k].i] = Outcome{Entry: &e}
						pending[k].req = nil
					}
				}
			}
		}
	}

	if s.journal != nil {
		for k := range pending {
			if pending[k].req == nil {
				continue
			}
			blob, err := encodeJobPayload(pending[k].req)
			if err != nil {
				// The job still runs; it just can't be replayed.
				log.Printf("service: %v", err)
			}
			pending[k].blob = blob
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	// Plan first: how many genuinely new jobs does the batch need once
	// in-flight coalescing and within-batch dedup are accounted for?
	newJobs := 0
	batchFirst := make(map[string]int) // fingerprint → pending index of first occurrence
	for k := range pending {
		req := pending[k].req
		if req == nil {
			continue
		}
		if _, inFlight := s.flight[req.fingerprint]; inFlight {
			continue
		}
		if _, dup := batchFirst[req.fingerprint]; dup {
			continue
		}
		batchFirst[req.fingerprint] = k
		newJobs++
	}
	if free := cap(s.queue) - len(s.queue); newJobs > free {
		s.mu.Unlock()
		s.stats.rejected.Add(int64(len(pending)))
		return nil, ErrOverloaded
	}
	created := make(map[string]*Job, newJobs)
	for k := range pending {
		req := pending[k].req
		if req == nil {
			continue
		}
		// The created map first: a job made for an earlier item of this
		// batch is already in s.flight too, and must read as a
		// within-batch dup, not a coalesce onto pre-existing work.
		if job, ok := created[req.fingerprint]; ok {
			outs[pending[k].i] = Outcome{Job: job, Coalesced: true, Dup: true}
			continue
		}
		if job, ok := s.flight[req.fingerprint]; ok {
			outs[pending[k].i] = Outcome{Job: job, Coalesced: true}
			continue
		}
		s.nextID++
		job := &Job{
			ID:          fmt.Sprintf("job-%06d", s.nextID),
			Fingerprint: req.fingerprint,
			Mapper:      req.mapper,
			Seed:        req.seed,
			Budgets:     req.budgets,
			req:         req,
			status:      JobQueued,
			created:     time.Now(),
			done:        make(chan struct{}),
			events:      newEventLog(),
		}
		s.jobs[job.ID] = job
		s.flight[job.Fingerprint] = job
		created[req.fingerprint] = job
		s.jlog(Record{Kind: journal.Submitted, JobID: job.ID, Key: job.Fingerprint, Blob: pending[k].blob})
		job.emit(JobQueued)
		s.queue <- job // capacity checked above, never blocks
		outs[pending[k].i] = Outcome{Job: job}
	}
	s.mu.Unlock()

	// Per-item stats, identical buckets to the single-submit path.
	for i, req := range reqs {
		if req == nil {
			continue
		}
		s.stats.submitted.Add(1)
		switch {
		case outs[i].Entry != nil:
			s.stats.hits.Add(1)
		case outs[i].Coalesced:
			s.stats.coalesced.Add(1)
		default:
			s.stats.misses.Add(1)
		}
	}
	return outs, nil
}

// handleBatch is POST /v1/batch: decode, resolve every item against
// the top-level defaults, run one admission decision, and answer with
// the per-item outcomes (200 when nothing is left running, 202
// otherwise). Item-level resolution failures are partial: they occupy
// their slot in the response with a typed error while the rest of the
// batch proceeds.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq BatchRequest
	if !decodeJSONBody(w, r, s.maxBodyBytes(), &breq) {
		return
	}
	if len(breq.Items) == 0 {
		httpError(w, http.StatusBadRequest, "bad-request", fmt.Errorf("batch has no items"))
		return
	}
	if max := s.maxBatchItems(); len(breq.Items) > max {
		httpError(w, http.StatusBadRequest, "oversized-batch",
			fmt.Errorf("batch has %d items, limit %d", len(breq.Items), max))
		return
	}

	tr := obs.NewTrace("batch")
	admit := tr.Root().Child("batch.admit")
	admit.Set("items", int64(len(breq.Items)))

	items := make([]*batchItem, len(breq.Items))
	reqs := make([]*resolved, len(breq.Items))
	for i := range breq.Items {
		req := breq.Items[i]
		if req.Arch == "" && len(req.ArchDesc) == 0 {
			req.Arch = breq.Arch
		}
		if req.Mapper == "" {
			req.Mapper = breq.Mapper
		}
		if req.TimeoutMS == 0 {
			req.TimeoutMS = breq.TimeoutMS
		}
		req.Wait = false // batch-level Wait only
		res, err := s.resolve(&req)
		if err != nil {
			it := &batchItem{err: err, errClass: "bad-request"}
			var um *UnknownMapperError
			if errors.As(err, &um) {
				it.errClass = "unknown-mapper"
				it.errValid = um.Valid
			}
			items[i] = it
			s.stats.batchItemsError.Add(1)
			continue
		}
		reqs[i] = res
		items[i] = &batchItem{fingerprint: res.fingerprint}
	}

	s.stats.batchRequests.Add(1)
	outs, err := s.submitBatch(reqs)
	switch {
	case errors.Is(err, ErrOverloaded):
		s.stats.batchRejected.Add(1)
		admit.Set("rejected", "overloaded")
		admit.End()
		w.Header().Set("Retry-After", strconv429(s.retryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, "overloaded", err)
		return
	case errors.Is(err, ErrDraining):
		s.stats.batchRejected.Add(1)
		admit.Set("rejected", "draining")
		admit.End()
		httpError(w, http.StatusServiceUnavailable, "draining", err)
		return
	case errors.Is(err, ErrShedding):
		s.stats.batchRejected.Add(1)
		admit.Set("rejected", "shedding")
		admit.End()
		w.Header().Set("Retry-After", strconv429(s.retryAfterSeconds()))
		httpError(w, http.StatusServiceUnavailable, "shedding", err)
		return
	case err != nil:
		admit.End()
		httpError(w, http.StatusInternalServerError, "internal", err)
		return
	}

	var hits, coalesced, dups, enqueued int64
	for i := range items {
		if items[i].err != nil {
			continue
		}
		out := outs[i]
		switch {
		case out.Entry != nil:
			items[i].entry = out.Entry
			items[i].fingerprint = out.Entry.Fingerprint
			items[i].cache = "hit"
			hits++
		case out.Dup:
			items[i].job = out.Job
			items[i].fingerprint = out.Job.Fingerprint
			items[i].cache = "dup"
			dups++
		case out.Coalesced:
			items[i].job = out.Job
			items[i].fingerprint = out.Job.Fingerprint
			items[i].cache = "coalesced"
			coalesced++
		default:
			items[i].job = out.Job
			items[i].fingerprint = out.Job.Fingerprint
			enqueued++
		}
	}
	s.stats.batchItemsHit.Add(hits)
	s.stats.batchItemsCoalesced.Add(coalesced)
	s.stats.batchItemsDup.Add(dups)
	s.stats.batchItemsEnqueued.Add(enqueued)
	admit.Set("hits", hits)
	admit.Set("coalesced", coalesced)
	admit.Set("dups", dups)
	admit.Set("enqueued", enqueued)
	admit.End()

	b := &Batch{items: items, trace: tr, created: time.Now()}
	s.mu.Lock()
	s.nextBatch++
	b.ID = fmt.Sprintf("batch-%06d", s.nextBatch)
	s.batches[b.ID] = b
	s.mu.Unlock()

	if breq.Wait {
		for _, it := range items {
			if it.job == nil {
				continue
			}
			select {
			case <-it.job.Done():
			case <-r.Context().Done():
				// The client went away mid-wait; the jobs keep running
				// and the batch stays pollable/streamable.
				writeJSON(w, http.StatusAccepted, b.View())
				return
			}
		}
	}
	v := b.View()
	status := http.StatusAccepted
	if v.Done {
		status = http.StatusOK
	}
	writeJSON(w, status, v)
}

// handleBatchGet is GET /v1/batch/{id}: the live batch snapshot.
func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	b, ok := s.Batch(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "not-found", fmt.Errorf("unknown batch %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, b.View())
}
