package service

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"
)

// HeaderWebhookSignature carries the hex HMAC-SHA256 of the webhook
// body, keyed by Options.WebhookSecret: "sha256=<hex>". Receivers
// recompute it over the raw body and compare with hmac.Equal before
// trusting the payload (see DEPLOYMENT.md for a verifier sketch).
const HeaderWebhookSignature = "X-Panorama-Signature"

// HeaderWebhookEvent names the event type ("job.done", "job.failed")
// so receivers can route without parsing the body.
const HeaderWebhookEvent = "X-Panorama-Event"

// webhookQueueSize bounds undelivered webhook events; beyond it new
// events are dropped (and counted) rather than blocking job
// completion — delivery is at-most-once by design.
const webhookQueueSize = 256

// WebhookPayload is the wire body of a completion webhook.
type WebhookPayload struct {
	Event string  `json:"event"` // "job.done" or "job.failed"
	Job   JobView `json:"job"`
}

type webhookEvent struct {
	url   string
	event string
	body  []byte
}

// webhookNotifier delivers signed job-completion POSTs from a single
// background sender, retrying each delivery on the same capped
// exponential backoff the job retry ladder uses (retry.go's backoff).
// Construction is unconditional and cheap; the sender goroutine only
// starts once the first event is queued, so servers without webhooks
// (most tests) never pay for one.
type webhookNotifier struct {
	st          *stats
	url         string
	secret      string
	timeout     time.Duration
	maxAttempts int
	retryBase   time.Duration
	client      *http.Client

	startOnce sync.Once
	closeOnce sync.Once
	queue     chan webhookEvent
	done      chan struct{}
}

// newWebhookNotifier wires a notifier from already-defaulted Options.
func newWebhookNotifier(st *stats, opts Options) *webhookNotifier {
	timeout := opts.WebhookTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	maxAttempts := opts.WebhookMaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	return &webhookNotifier{
		st:          st,
		url:         opts.WebhookURL,
		secret:      opts.WebhookSecret,
		timeout:     timeout,
		maxAttempts: maxAttempts,
		retryBase:   opts.RetryBase,
		client:      &http.Client{},
		queue:       make(chan webhookEvent, webhookQueueSize),
		done:        make(chan struct{}),
	}
}

// notify queues a completion event for job if a destination is
// configured (per-request webhook wins over the server-wide URL).
// Never blocks: a full queue drops the event and counts the drop.
func (n *webhookNotifier) notify(s *Server, job *Job) {
	if n == nil {
		return
	}
	dest := ""
	if job.req != nil {
		dest = job.req.webhook
	}
	if dest == "" {
		dest = n.url
	}
	if dest == "" {
		return
	}
	event := "job.done"
	if job.Err() != nil {
		event = "job.failed"
	}
	body, err := json.Marshal(WebhookPayload{Event: event, Job: job.View()})
	if err != nil {
		log.Printf("service: webhook payload for %s: %v", job.ID, err)
		n.st.webhookDropped.Add(1)
		return
	}
	n.startOnce.Do(func() { go n.run() })
	select {
	case n.queue <- webhookEvent{url: dest, event: event, body: body}:
	default:
		n.st.webhookDropped.Add(1)
	}
}

// run is the sender goroutine: one delivery (with retries) at a time,
// in completion order.
func (n *webhookNotifier) run() {
	defer close(n.done)
	for ev := range n.queue {
		n.deliver(ev)
	}
}

// deliver walks one event up the retry ladder.
func (n *webhookNotifier) deliver(ev webhookEvent) {
	for attempt := 1; ; attempt++ {
		err := n.post(ev)
		if err == nil {
			n.st.webhookSent.Add(1)
			return
		}
		if attempt >= n.maxAttempts {
			n.st.webhookFailed.Add(1)
			log.Printf("service: webhook %s: giving up after %d attempt(s): %v", ev.url, attempt, err)
			return
		}
		n.st.webhookRetried.Add(1)
		if d := backoff(n.retryBase, attempt); d > 0 {
			time.Sleep(d)
		}
	}
}

// post performs one signed delivery attempt; any non-2xx answer is an
// error (and retried).
func (n *webhookNotifier) post(ev webhookEvent) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ev.url, bytes.NewReader(ev.body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderWebhookEvent, ev.event)
	if n.secret != "" {
		req.Header.Set(HeaderWebhookSignature, SignWebhook(n.secret, ev.body))
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// close stops accepting events and waits for the queue to drain,
// bounded by ctx (an already-expired ctx skips the wait — crash-style
// shutdowns drop undelivered webhooks, which at-most-once allows).
func (n *webhookNotifier) close(ctx context.Context) {
	if n == nil {
		return
	}
	// If the sender never started (no event was ever queued), the
	// startOnce here closes done so the wait below returns at once;
	// otherwise the sender closes done when the queue drains.
	n.startOnce.Do(func() { close(n.done) })
	n.closeOnce.Do(func() { close(n.queue) })
	select {
	case <-n.done:
	case <-ctx.Done():
	}
}

// SignWebhook computes the signature header value for body under
// secret — exported so webhook receivers (and tests) can verify
// deliveries with the exact algorithm the sender uses.
func SignWebhook(secret string, body []byte) string {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(body)
	return "sha256=" + hex.EncodeToString(mac.Sum(nil))
}

// VerifyWebhook reports whether header is a valid signature of body
// under secret (constant-time compare).
func VerifyWebhook(secret string, body []byte, header string) bool {
	return hmac.Equal([]byte(SignWebhook(secret, body)), []byte(header))
}
