package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"panorama/internal/cluster"
	"panorama/internal/core"
	"panorama/internal/failure"
)

// StatusClientClosedRequest is the nginx-convention status for a job
// whose computation was cancelled (no standard code exists).
const StatusClientClosedRequest = 499

// ErrorInfo is the wire form of a typed failure: Class is the failure
// taxonomy bucket the HTTP status was derived from, Stage the pipeline
// stage that produced it (when known).
type ErrorInfo struct {
	Class   string `json:"class"` // budget, cancelled, infeasible, lower-failed, panic, internal
	Stage   string `json:"stage,omitempty"`
	Message string `json:"message"`
	// Valid lists the accepted values when the error is a rejected
	// enumerated field (class "unknown-mapper": the registered mapper
	// names).
	Valid []string `json:"valid,omitempty"`
}

// JobView is the wire form of a job (POST /v1/map and GET /v1/jobs).
type JobView struct {
	ID          string        `json:"id"`
	Fingerprint string        `json:"fingerprint"`
	Mapper      string        `json:"mapper"`
	Seed        int64         `json:"seed,omitempty"`
	Status      JobStatus     `json:"status"`
	Cache       string        `json:"cache,omitempty"` // "hit" or "coalesced"
	Result      *core.Summary `json:"result,omitempty"`
	Error       *ErrorInfo    `json:"error,omitempty"`
	Attempts    int           `json:"attempts,omitempty"`
	RunMapper   string        `json:"runMapper,omitempty"` // set when degraded below Mapper
	QueuedMS    float64       `json:"queuedMS,omitempty"`
	RunMS       float64       `json:"runMS,omitempty"`
}

// View snapshots the job for the wire.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Fingerprint: j.Fingerprint,
		Mapper:      j.Mapper,
		Seed:        j.Seed,
		Status:      j.status,
		Result:      j.summary,
		Attempts:    j.attempts,
	}
	if j.degraded {
		v.RunMapper = j.runMapper
	}
	if j.err != nil {
		v.Error = &ErrorInfo{
			Class:   failureClass(j.err),
			Stage:   failure.StageOf(j.err),
			Message: j.err.Error(),
		}
	}
	if !j.started.IsZero() {
		v.QueuedMS = float64(j.started.Sub(j.created)) / float64(time.Millisecond)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		v.RunMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	return v
}

// failureClass buckets an error by the failure taxonomy.
func failureClass(err error) string {
	var pe *failure.PanicError
	switch {
	case failure.IsBudget(err):
		return "budget"
	case failure.IsCancelled(err):
		return "cancelled"
	case failure.IsInfeasible(err):
		return "infeasible"
	case errors.Is(err, failure.ErrLowerFailed):
		return "lower-failed"
	case errors.As(err, &pe):
		return "panic"
	default:
		return "internal"
	}
}

// failureStatus maps the failure taxonomy onto distinct HTTP statuses:
// budget → 504, cancelled → 499, infeasible → 422, everything else
// (lower-failed, panics, internal errors) → 500.
func failureStatus(err error) int {
	switch {
	case failure.IsBudget(err):
		return http.StatusGatewayTimeout
	case failure.IsCancelled(err):
		return StatusClientClosedRequest
	case failure.IsInfeasible(err):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// Handler returns the service's HTTP surface:
//
//	POST /v1/map        submit a job (cache hit → 200, queued → 202,
//	                    wait=true blocks for the outcome)
//	POST /v1/batch      submit many jobs under one admission decision
//	                    (fully resolved → 200, anything queued → 202)
//	GET  /v1/batch/{id} batch status with per-item outcomes
//	GET  /v1/batch/{id}/events  SSE aggregate stream: one "item" event
//	                    per item as it finishes, then a "batch" summary
//	GET  /v1/jobs/{id}  job status/result; ?wait=1 blocks until done
//	GET  /v1/jobs/{id}/events  SSE stream of the job's state
//	                    transitions, resumable via Last-Event-ID
//	GET  /v1/result/{fp} cached result by fingerprint
//	GET  /v1/trace/{id} the job's (or batch admission's) span tree
//	                    (JSON; live snapshot while the job runs, 404
//	                    before it starts)
//	GET  /v1/cluster/statsz  this peer's ring membership, peer health
//	                    and recently completed fingerprints (the
//	                    fleet gossip surface)
//	GET  /healthz       liveness ("ok", or "draining" during shutdown)
//	GET  /metricsz      service + pipeline metrics (Prometheus text)
//	GET  /statsz        cache/queue/failure counters (JSON; deprecated
//	                    alias of /metricsz, kept for old scrapers)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", s.handleMap)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/batch/{id}", s.handleBatchGet)
	mux.HandleFunc("GET /v1/batch/{id}/events", s.handleBatchEvents)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/result/{fp}", s.handleResult)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/cluster/statsz", s.handleClusterStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metricsz", s.handleMetrics)
	mux.HandleFunc("GET /statsz", s.handleStats)
	return mux
}

// maxBodyBytes is the request-body cap before JSON decoding.
func (s *Server) maxBodyBytes() int64 {
	if s.opts.MaxBodyBytes > 0 {
		return s.opts.MaxBodyBytes
	}
	return 8 << 20
}

// maxBatchItems is the per-request item cap on POST /v1/batch.
func (s *Server) maxBatchItems() int {
	if s.opts.MaxBatchItems > 0 {
		return s.opts.MaxBatchItems
	}
	return 64
}

// decodeJSONBody decodes a size-capped request body into v, writing
// the error response (413 oversized, 400 malformed) itself and
// reporting whether the caller should proceed.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge, "oversized-body",
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, "bad-request", err)
		return false
	}
	return true
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !decodeJSONBody(w, r, s.maxBodyBytes(), &req) {
		return
	}
	res, err := s.resolve(&req)
	if err != nil {
		var um *UnknownMapperError
		if errors.As(err, &um) {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": ErrorInfo{Class: "unknown-mapper", Message: um.Error(), Valid: um.Valid},
			})
			return
		}
		httpError(w, http.StatusBadRequest, "bad-request", err)
		return
	}
	if from := r.Header.Get(cluster.HeaderForwardedFrom); from != "" {
		// Single-hop guard: a forwarded request is never forwarded
		// again. If this peer's ring view says the fingerprint belongs
		// elsewhere (a mid-reconfiguration fleet), 421 tells the origin
		// to run the job locally instead of starting a loop.
		if cl := s.opts.Cluster; cl.Enabled() && !cl.IsSelf(cl.Owner(res.fingerprint)) {
			s.stats.forwardMisdirected.Add(1)
			httpError(w, http.StatusMisdirectedRequest, "misdirected",
				fmt.Errorf("peer %s forwarded fingerprint %s, but this peer does not own it", from, res.fingerprint))
			return
		}
		res.origin = from
		s.stats.originJobs.Add(1)
	}
	out, err := s.submit(res)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv429(s.retryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, "overloaded", err)
		return
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "draining", err)
		return
	case errors.Is(err, ErrShedding):
		w.Header().Set("Retry-After", strconv429(s.retryAfterSeconds()))
		httpError(w, http.StatusServiceUnavailable, "shedding", err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "internal", err)
		return
	}

	if out.Entry != nil {
		writeJSON(w, http.StatusOK, JobView{
			Fingerprint: out.Entry.Fingerprint,
			Mapper:      res.mapper,
			Seed:        res.seed,
			Status:      JobDone,
			Cache:       "hit",
			Result:      &out.Entry.Summary,
		})
		return
	}

	job := out.Job
	cacheNote := ""
	if out.Coalesced {
		cacheNote = "coalesced"
	}
	if res.wait {
		select {
		case <-job.Done():
			s.writeJobOutcome(w, job, cacheNote)
		case <-r.Context().Done():
			// The client went away mid-wait; the job keeps running and
			// remains pollable.
			v := job.View()
			v.Cache = cacheNote
			writeJSON(w, http.StatusAccepted, v)
		}
		return
	}
	v := job.View()
	v.Cache = cacheNote
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "not-found", fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-job.Done():
		case <-r.Context().Done():
		}
	}
	select {
	case <-job.Done():
		s.writeJobOutcome(w, job, "")
	default:
		writeJSON(w, http.StatusAccepted, job.View())
	}
}

// writeJobOutcome renders a finished job: 200 on success, the typed
// failure's status otherwise.
func (s *Server) writeJobOutcome(w http.ResponseWriter, job *Job, cacheNote string) {
	v := job.View()
	v.Cache = cacheNote
	if err := job.Err(); err != nil {
		writeJSON(w, failureStatus(err), v)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	e, ok := s.cache.Get(fp)
	if !ok {
		httpError(w, http.StatusNotFound, "not-found", fmt.Errorf("no cached result for %q", fp))
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if b, ok := s.Batch(r.PathValue("id")); ok {
		writeJSON(w, http.StatusOK, b.trace.Dump())
		return
	}
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "not-found", fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	tr := job.Trace()
	if tr == nil {
		httpError(w, http.StatusNotFound, "not-found", fmt.Errorf("job %q has no trace yet", job.ID))
		return
	}
	writeJSON(w, http.StatusOK, tr.Dump())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, class string, err error) {
	writeJSON(w, status, map[string]any{
		"error": ErrorInfo{Class: class, Message: err.Error()},
	})
}
