package service

import (
	"sync/atomic"
	"time"

	"panorama/internal/core"
	"panorama/internal/failure"
)

// stats is the server's hot-path counter set. Everything is atomic so
// handlers and workers never contend on a lock for bookkeeping.
type stats struct {
	submitted atomic.Int64 // accepted submissions (hit, coalesced or enqueued)
	rejected  atomic.Int64 // 429s from admission control

	hits      atomic.Int64 // served straight from the cache
	misses    atomic.Int64 // required a computation
	coalesced atomic.Int64 // attached to an identical in-flight job

	executed  atomic.Int64 // pipeline executions started
	completed atomic.Int64 // executions that returned a clean Summary

	failedBudget     atomic.Int64
	failedInfeasible atomic.Int64
	failedCancelled  atomic.Int64
	failedOther      atomic.Int64

	retried       atomic.Int64 // attempts re-run by the retry ladder
	degraded      atomic.Int64 // jobs stepped down to a cheaper mapper
	shed          atomic.Int64 // submissions refused by the breaker
	requeued      atomic.Int64 // jobs handed back to the journal on drain
	recovered     atomic.Int64 // jobs replayed from the journal at startup
	journalErrors atomic.Int64 // journal appends that failed

	batchRequests       atomic.Int64 // POST /v1/batch requests that reached admission
	batchRejected       atomic.Int64 // batches rejected wholesale (429/503)
	batchItemsHit       atomic.Int64 // batch items served from the cache
	batchItemsCoalesced atomic.Int64 // batch items attached to an in-flight job
	batchItemsDup       atomic.Int64 // batch items deduped within their batch
	batchItemsEnqueued  atomic.Int64 // batch items that created a job
	batchItemsError     atomic.Int64 // batch items rejected at resolve time

	sseStreams atomic.Int64 // event streams opened (job + batch)
	sseResumed atomic.Int64 // streams opened with a Last-Event-ID cursor
	sseSent    atomic.Int64 // events written to streams
	sseActive  atomic.Int64 // streams currently open (gauge)

	forwarded          atomic.Int64 // attempts concluded on the ring owner
	forwardFallback    atomic.Int64 // forwards that fell back to local execution
	forwardMisdirected atomic.Int64 // forwarded requests this peer answered 421
	originJobs         atomic.Int64 // jobs accepted on behalf of another peer
	gossipFilled       atomic.Int64 // cache entries pulled from peers by gossip

	webhookSent    atomic.Int64 // webhook deliveries acknowledged 2xx
	webhookRetried atomic.Int64 // delivery attempts that will be retried
	webhookFailed  atomic.Int64 // events given up after the retry ladder
	webhookDropped atomic.Int64 // events dropped (full queue, bad payload)

	// Cumulative per-stage wall time of executed jobs, from
	// Result.Provenance (nanoseconds).
	clusteringNS atomic.Int64
	clustermapNS atomic.Int64
	lowerNS      atomic.Int64
}

func (st *stats) recordStages(sum core.Summary) {
	for _, rec := range sum.Stages {
		switch rec.Stage {
		case "clustering":
			st.clusteringNS.Add(int64(rec.Wall))
		case "clustermap":
			st.clustermapNS.Add(int64(rec.Wall))
		case "lower":
			st.lowerNS.Add(int64(rec.Wall))
		}
	}
}

func (st *stats) recordFailure(err error) {
	switch {
	case failure.IsBudget(err):
		st.failedBudget.Add(1)
	case failure.IsCancelled(err):
		st.failedCancelled.Add(1)
	case failure.IsInfeasible(err):
		st.failedInfeasible.Add(1)
	default:
		st.failedOther.Add(1)
	}
}

// Stats is the /statsz wire format: a consistent-enough snapshot of
// the counters plus instantaneous queue and cache gauges.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`

	CacheHits      int64   `json:"cacheHits"`
	CacheMisses    int64   `json:"cacheMisses"`
	Coalesced      int64   `json:"coalesced"`
	CacheHitRate   float64 `json:"cacheHitRate"` // hits / (hits+misses)
	CacheEntries   int     `json:"cacheEntries"`
	QueueDepth     int     `json:"queueDepth"`
	RunningJobs    int     `json:"runningJobs"`
	Executed       int64   `json:"executed"`
	Completed      int64   `json:"completed"`
	FailedBudget   int64   `json:"failedBudget"`
	FailedInfeasib int64   `json:"failedInfeasible"`
	FailedCancel   int64   `json:"failedCancelled"`
	FailedOther    int64   `json:"failedOther"`

	Retried       int64 `json:"retried"`
	Degraded      int64 `json:"degraded"`
	Shed          int64 `json:"shed"`
	Requeued      int64 `json:"requeued"`
	Recovered     int64 `json:"recovered"`
	JournalErrors int64 `json:"journalAppendErrors"`

	BatchRequests       int64 `json:"batchRequests"`
	BatchRejected       int64 `json:"batchRejected"`
	BatchItemsHit       int64 `json:"batchItemsHit"`
	BatchItemsCoalesced int64 `json:"batchItemsCoalesced"`
	BatchItemsDup       int64 `json:"batchItemsDup"`
	BatchItemsEnqueued  int64 `json:"batchItemsEnqueued"`
	BatchItemsError     int64 `json:"batchItemsError"`

	SSEStreams int64 `json:"sseStreams"`
	SSEResumed int64 `json:"sseResumed"`
	SSESent    int64 `json:"sseEventsSent"`
	SSEActive  int64 `json:"sseActiveStreams"`

	ClusterForwarded   int64 `json:"clusterForwarded"`
	ClusterFallback    int64 `json:"clusterForwardFallback"`
	ClusterMisdirected int64 `json:"clusterMisdirected"`
	ClusterOriginJobs  int64 `json:"clusterOriginJobs"`
	ClusterGossipFill  int64 `json:"clusterGossipFill"`
	// ClusterPeers/ClusterPeersDown mirror the ring membership gauges
	// (zero on standalone servers).
	ClusterPeers     int `json:"clusterPeers"`
	ClusterPeersDown int `json:"clusterPeersDown"`

	WebhooksSent    int64 `json:"webhooksSent"`
	WebhooksRetried int64 `json:"webhooksRetried"`
	WebhooksFailed  int64 `json:"webhooksFailed"`
	WebhooksDropped int64 `json:"webhooksDropped"`

	// BreakerState is "ok", "degrade" or "shed"; BreakerFailureRate is
	// the windowed failure fraction behind it.
	BreakerState       string  `json:"breakerState"`
	BreakerFailureRate float64 `json:"breakerFailureRate"`

	ClusteringMS float64 `json:"stageClusteringMS"`
	ClusterMapMS float64 `json:"stageClusterMapMS"`
	LowerMS      float64 `json:"stageLowerMS"`

	Draining bool `json:"draining"`
}

// Stats snapshots the server's counters and gauges.
func (s *Server) Stats() Stats {
	st := &s.stats
	out := Stats{
		Submitted:           st.submitted.Load(),
		Rejected:            st.rejected.Load(),
		CacheHits:           st.hits.Load(),
		CacheMisses:         st.misses.Load(),
		Coalesced:           st.coalesced.Load(),
		CacheEntries:        s.cache.Len(),
		QueueDepth:          len(s.queue),
		RunningJobs:         int(s.running.Load()),
		Executed:            st.executed.Load(),
		Completed:           st.completed.Load(),
		FailedBudget:        st.failedBudget.Load(),
		FailedInfeasib:      st.failedInfeasible.Load(),
		FailedCancel:        st.failedCancelled.Load(),
		FailedOther:         st.failedOther.Load(),
		Retried:             st.retried.Load(),
		Degraded:            st.degraded.Load(),
		Shed:                st.shed.Load(),
		Requeued:            st.requeued.Load(),
		Recovered:           st.recovered.Load(),
		JournalErrors:       st.journalErrors.Load(),
		BatchRequests:       st.batchRequests.Load(),
		BatchRejected:       st.batchRejected.Load(),
		BatchItemsHit:       st.batchItemsHit.Load(),
		BatchItemsCoalesced: st.batchItemsCoalesced.Load(),
		BatchItemsDup:       st.batchItemsDup.Load(),
		BatchItemsEnqueued:  st.batchItemsEnqueued.Load(),
		BatchItemsError:     st.batchItemsError.Load(),
		SSEStreams:          st.sseStreams.Load(),
		SSEResumed:          st.sseResumed.Load(),
		SSESent:             st.sseSent.Load(),
		SSEActive:           st.sseActive.Load(),
		ClusterForwarded:    st.forwarded.Load(),
		ClusterFallback:     st.forwardFallback.Load(),
		ClusterMisdirected:  st.forwardMisdirected.Load(),
		ClusterOriginJobs:   st.originJobs.Load(),
		ClusterGossipFill:   st.gossipFilled.Load(),
		WebhooksSent:        st.webhookSent.Load(),
		WebhooksRetried:     st.webhookRetried.Load(),
		WebhooksFailed:      st.webhookFailed.Load(),
		WebhooksDropped:     st.webhookDropped.Load(),
		BreakerState:        s.breaker.state().String(),
		BreakerFailureRate:  s.breaker.failureRate(),
		ClusteringMS:        float64(st.clusteringNS.Load()) / float64(time.Millisecond),
		ClusterMapMS:        float64(st.clustermapNS.Load()) / float64(time.Millisecond),
		LowerMS:             float64(st.lowerNS.Load()) / float64(time.Millisecond),
	}
	if n := out.CacheHits + out.CacheMisses; n > 0 {
		out.CacheHitRate = float64(out.CacheHits) / float64(n)
	}
	if cl := s.opts.Cluster; cl != nil {
		cs := cl.Stats()
		out.ClusterPeers = len(cs.Peers)
		out.ClusterPeersDown = cs.PeersDown
	}
	s.mu.Lock()
	out.Draining = s.draining
	s.mu.Unlock()
	return out
}
