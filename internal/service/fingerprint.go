package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"time"

	"panorama/internal/arch"
	"panorama/internal/core"
	"panorama/internal/dfg"
)

// CodeVersion is folded into every fingerprint so cached results are
// never served across algorithm changes. Bump it whenever a change to
// the mapper stack can alter results for identical inputs.
const CodeVersion = 3

// Key computes the canonical content address of one mapping
// computation: the structural DFG fingerprint, the architecture
// parameters that determine the fabric, the mapper identity and seed,
// the stage budgets (budgets change what a degraded run returns), and
// CodeVersion. Identical keys denote identical results, which is what
// lets the cache serve them and the coalescer share them.
//
// Deliberately excluded: graph/arch names (cosmetic), worker counts
// (PR-1 guarantees bit-identical results at any parallelism), and the
// caller's context deadline (the job runs under Budgets.Total, which
// is included).
func Key(g *dfg.Graph, a *arch.CGRA, mapper string, seed int64, budgets core.Budgets) string {
	h := sha256.New()
	fmt.Fprintf(h, "panorama/service/v%d\x00", CodeVersion)
	fmt.Fprintf(h, "dfg:%s\x00", g.Fingerprint())
	writeInts(h,
		a.Rows, a.Cols, a.ClusterRows, a.ClusterCols,
		a.NumRegs, a.RFReadPorts, a.RFWritePorts, a.InterClusterLinks)
	fmt.Fprintf(h, "mapper:%s\x00", mapper)
	writeInts(h, int(seed))
	writeDurations(h, budgets.Clustering, budgets.ClusterMap, budgets.Lower, budgets.Total)
	return fmt.Sprintf("%x", h.Sum(nil))
}

func writeInts(h hash.Hash, vs ...int) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
}

func writeDurations(h hash.Hash, ds ...time.Duration) {
	for _, d := range ds {
		writeInts(h, int(d))
	}
}
