package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"panorama/internal/core"
	"panorama/internal/failure"
)

// errorBody is the typed error envelope every failing endpoint writes.
type errorBody struct {
	Error ErrorInfo `json:"error"`
}

// The error-path contract, one table: every way a request can fail
// maps to a distinct (status, error class) pair, rejections that
// invite a retry carry Retry-After, and enumerated-field rejections
// list the accepted values. Failure-taxonomy outcomes (infeasible,
// budget, cancelled) are driven through wait=true so the terminal
// status codes are covered end to end.
func TestHTTPErrorTable(t *testing.T) {
	// The executor fails by seed: each taxonomy bucket is a seed away.
	run := func(ctx context.Context, job *Job) (core.Summary, error) {
		switch job.Seed {
		case 422:
			return core.Summary{}, failure.Stage("clustermap", failure.ErrInfeasible)
		case 504:
			return core.Summary{}, failure.Stage("lower", failure.ErrBudget)
		case 499:
			return core.Summary{}, failure.Stage("pipeline", failure.ErrCancelled)
		}
		return core.Summary{Kernel: "stub", Success: true}, nil
	}
	srv, err := New(Options{
		Workers: 1, QueueSize: 8, Run: run,
		RetryAfter:   3 * time.Second,
		MaxBodyBytes: 1 << 16,
		MaxAttempts:  1, // taxonomy errors surface on the first attempt
		RetryBase:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		status     int
		class      string
		wantValid  bool   // error lists accepted values
		retryAfter string // expected Retry-After header ("" = none)
	}{
		{
			name: "unknown mapper", method: "POST", path: "/v1/map",
			body:   `{"kernel":"fir","mapper":"no-such-mapper"}`,
			status: http.StatusBadRequest, class: "unknown-mapper", wantValid: true,
		},
		{
			name: "malformed JSON", method: "POST", path: "/v1/map",
			body:   `{"kernel":`,
			status: http.StatusBadRequest, class: "bad-request",
		},
		{
			name: "unknown field", method: "POST", path: "/v1/map",
			body:   `{"kernel":"fir","bogus":1}`,
			status: http.StatusBadRequest, class: "bad-request",
		},
		{
			name: "kernel and dfg together", method: "POST", path: "/v1/map",
			body:   `{"kernel":"fir","dfg":{"name":"x"}}`,
			status: http.StatusBadRequest, class: "bad-request",
		},
		{
			name: "neither kernel nor dfg", method: "POST", path: "/v1/map",
			body:   `{"seed":1}`,
			status: http.StatusBadRequest, class: "bad-request",
		},
		{
			name: "unknown arch preset", method: "POST", path: "/v1/map",
			body:   `{"kernel":"fir","arch":"3x3"}`,
			status: http.StatusBadRequest, class: "bad-request",
		},
		{
			name: "oversized body", method: "POST", path: "/v1/map",
			body:   `{"pad":"` + strings.Repeat("x", 1<<17) + `"}`,
			status: http.StatusRequestEntityTooLarge, class: "oversized-body",
		},
		{
			name: "oversized batch body", method: "POST", path: "/v1/batch",
			body:   `{"pad":"` + strings.Repeat("x", 1<<17) + `"}`,
			status: http.StatusRequestEntityTooLarge, class: "oversized-body",
		},
		{
			name: "batch over item limit", method: "POST", path: "/v1/batch",
			body:   `{"items":[` + strings.Repeat(`{"kernel":"fir"},`, 64) + `{"kernel":"fir"}]}`,
			status: http.StatusBadRequest, class: "oversized-batch",
		},
		{
			name: "infeasible", method: "POST", path: "/v1/map",
			body:   `{"kernel":"fir","seed":422,"wait":true}`,
			status: http.StatusUnprocessableEntity, class: "infeasible",
		},
		{
			name: "budget exhausted", method: "POST", path: "/v1/map",
			body:   `{"kernel":"fir","seed":504,"wait":true}`,
			status: http.StatusGatewayTimeout, class: "budget",
		},
		{
			name: "cancelled", method: "POST", path: "/v1/map",
			body:   `{"kernel":"fir","seed":499,"wait":true}`,
			status: StatusClientClosedRequest, class: "cancelled",
		},
		{
			name: "unknown job", method: "GET", path: "/v1/jobs/job-999999",
			status: http.StatusNotFound, class: "not-found",
		},
		{
			name: "unknown result", method: "GET", path: "/v1/result/deadbeef",
			status: http.StatusNotFound, class: "not-found",
		},
		{
			name: "unknown trace", method: "GET", path: "/v1/trace/job-999999",
			status: http.StatusNotFound, class: "not-found",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			if got := resp.Header.Get("Retry-After"); got != tc.retryAfter {
				t.Fatalf("Retry-After %q, want %q", got, tc.retryAfter)
			}
			// Terminal taxonomy failures answer with a JobView whose
			// Error field carries the class; admission and validation
			// failures answer with the bare error envelope.
			switch tc.status {
			case http.StatusUnprocessableEntity, http.StatusGatewayTimeout, StatusClientClosedRequest:
				var v JobView
				if err := json.Unmarshal(data, &v); err != nil {
					t.Fatalf("job view: %v\n%s", err, data)
				}
				if v.Error == nil || v.Error.Class != tc.class {
					t.Fatalf("job error %+v, want class %q", v.Error, tc.class)
				}
				if v.Error.Stage == "" {
					t.Fatalf("taxonomy error lost its stage: %+v", v.Error)
				}
			default:
				var e errorBody
				if err := json.Unmarshal(data, &e); err != nil {
					t.Fatalf("error body: %v\n%s", err, data)
				}
				if e.Error.Class != tc.class {
					t.Fatalf("class %q, want %q: %s", e.Error.Class, tc.class, data)
				}
				if e.Error.Message == "" {
					t.Fatalf("empty error message: %s", data)
				}
				if tc.wantValid && len(e.Error.Valid) == 0 {
					t.Fatalf("error lists no accepted values: %s", data)
				}
			}
		})
	}
}

// The overload paths need a wedged server: a full queue answers 429
// with Retry-After on both the single and the batch surface.
func TestHTTPQueueFullPaths(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	run := func(ctx context.Context, job *Job) (core.Summary, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return core.Summary{Kernel: "stub", Success: true}, nil
	}
	srv, err := New(Options{Workers: 1, QueueSize: 1, Run: run, RetryAfter: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		srv.Shutdown(context.Background())
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := postMap(t, ts.URL, `{"kernel":"fir","seed":1}`); code != http.StatusAccepted {
		t.Fatalf("job 1: status %d", code)
	}
	<-started
	if code, _ := postMap(t, ts.URL, `{"kernel":"fir","seed":2}`); code != http.StatusAccepted {
		t.Fatalf("job 2: status %d", code)
	}

	for _, tc := range []struct{ path, body string }{
		{"/v1/map", `{"kernel":"fir","seed":3}`},
		{"/v1/batch", `{"items":[{"kernel":"fir","seed":3}]}`},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d, want 429: %s", tc.path, resp.StatusCode, data)
		}
		if got := resp.Header.Get("Retry-After"); got != "3" {
			t.Fatalf("%s: Retry-After %q, want \"3\" (fallback, no drain samples)", tc.path, got)
		}
		var e errorBody
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatal(err)
		}
		if e.Error.Class != "overloaded" {
			t.Fatalf("%s: class %q, want overloaded", tc.path, e.Error.Class)
		}
	}
}

// The breaker-shed path: force the breaker into shed and both
// surfaces answer 503 + Retry-After with class "shedding"; draining
// answers 503 with class "draining" and no Retry-After.
func TestHTTPShedAndDrainPaths(t *testing.T) {
	run := func(ctx context.Context, job *Job) (core.Summary, error) {
		return core.Summary{}, fmt.Errorf("boom: %w", failure.ErrLowerFailed)
	}
	srv, err := New(Options{
		Workers: 1, QueueSize: 8, Run: run,
		RetryAfter: 2 * time.Second,
		// A tiny window with shed at any failure: two failed jobs trip it.
		BreakerWindow: 2, BreakerDegrade: 0.4, BreakerShed: 0.5,
		MaxAttempts: 1, RetryBase: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Trip the breaker. (The degrade rung also fails, so the window
	// fills with failures regardless of mapper.)
	for seed := 1; seed <= 2; seed++ {
		body := fmt.Sprintf(`{"kernel":"fir","seed":%d,"wait":true}`, seed)
		if code, _ := postMap(t, ts.URL, body); code == http.StatusAccepted {
			t.Fatalf("seed %d: wait=true returned 202", seed)
		}
	}
	waitFor(t, func() bool { return getStats(t, ts.URL).BreakerState == "shed" }, "breaker to shed")

	for _, path := range []string{"/v1/map", "/v1/batch"} {
		body := `{"kernel":"fir","seed":77}`
		if path == "/v1/batch" {
			body = `{"items":[` + body + `]}`
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s shed: status %d, want 503: %s", path, resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s shed: no Retry-After", path)
		}
		var e errorBody
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatal(err)
		}
		if e.Error.Class != "shedding" {
			t.Fatalf("%s shed: class %q", path, e.Error.Class)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Draining needs an untripped breaker (admission checks the breaker
	// first): a fresh healthy server mid-shutdown answers 503/draining.
	srv2, err := New(Options{Workers: 1, QueueSize: 8, Run: func(ctx context.Context, job *Job) (core.Summary, error) {
		return core.Summary{Kernel: "stub", Success: true}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/map", "/v1/batch"} {
		body := `{"kernel":"fir","seed":78}`
		if path == "/v1/batch" {
			body = `{"items":[` + body + `]}`
		}
		resp, err := http.Post(ts2.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s draining: status %d: %s", path, resp.StatusCode, data)
		}
		var e errorBody
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatal(err)
		}
		if e.Error.Class != "draining" {
			t.Fatalf("%s draining: class %q", path, e.Error.Class)
		}
	}
}
