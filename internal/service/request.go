package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"panorama/internal/arch"
	"panorama/internal/core"
	"panorama/internal/dfg"
	"panorama/internal/kernels"
)

// Request is the POST /v1/map wire format. Exactly one of Kernel or
// DFG selects the graph; Arch names a preset unless ArchDesc carries a
// full architecture description (the same JSON the -arch-file CLI flag
// accepts).
type Request struct {
	Kernel string          `json:"kernel,omitempty"`
	Scale  float64         `json:"scale,omitempty"` // kernel scale factor, default 1.0
	DFG    json.RawMessage `json:"dfg,omitempty"`

	Arch     string          `json:"arch,omitempty"` // preset: 4x4, 8x8, 9x9, 16x16
	ArchDesc json.RawMessage `json:"archDesc,omitempty"`

	Mapper    string `json:"mapper,omitempty"` // any name in Mappers() (default pan-spr)
	Seed      int64  `json:"seed,omitempty"`
	TimeoutMS int64  `json:"timeoutMS,omitempty"` // job Budgets.Total override; 0 = server default

	// Wait makes POST /v1/map block until the job finishes (bounded by
	// the client's connection); otherwise a queued job returns 202
	// immediately.
	Wait bool `json:"wait,omitempty"`

	// Webhook is a per-job completion callback URL overriding the
	// server-wide Options.WebhookURL. Delivery metadata, not part of
	// the computation: it is excluded from the fingerprint, so two
	// requests differing only in webhook share one cache entry.
	Webhook string `json:"webhook,omitempty"`
}

// panPrefix marks the guided Panorama pipeline: "pan-spr" runs the
// full clustering → cluster-mapping → lowering stack with SPR* at the
// bottom, bare "spr" runs the same lowerer as an unguided baseline.
const panPrefix = "pan-"

// Mappers lists the accepted Request.Mapper values: every mapper in
// the core lowering registry, each in its bare (baseline) and "pan-"
// (guided pipeline) form. The list follows registry order, so new
// mappers show up here — and in the retry ladder — without any service
// edits.
func Mappers() []string {
	names := core.LowerNames()
	out := make([]string, 0, 2*len(names))
	for _, n := range names {
		out = append(out, n, panPrefix+n)
	}
	return out
}

// UnknownMapperError reports a request naming a mapper outside the
// registry; Valid carries the accepted names for the 400 response.
type UnknownMapperError struct {
	Name  string
	Valid []string
}

// Error formats the rejected name and the accepted alternatives.
func (e *UnknownMapperError) Error() string {
	return fmt.Sprintf("unknown mapper %q (want one of %v)", e.Name, e.Valid)
}

// resolved is a fully-validated request: graph and architecture
// instantiated, mapper checked, budgets decided, fingerprint computed.
type resolved struct {
	graph       *dfg.Graph
	arch        *arch.CGRA
	mapper      string
	seed        int64
	budgets     core.Budgets
	fingerprint string
	wait        bool
	webhook     string // per-job completion callback (not fingerprinted)
	origin      string // forwarding peer's URL when the job arrived via the ring
}

// resolve validates the wire request against the server defaults. The
// returned error is a client error (http 400) unless it wraps an
// internal failure.
func (s *Server) resolve(req *Request) (*resolved, error) {
	var g *dfg.Graph
	switch {
	case len(req.DFG) > 0 && req.Kernel != "":
		return nil, fmt.Errorf("request has both kernel and dfg; pick one")
	case len(req.DFG) > 0:
		g = new(dfg.Graph)
		if err := json.Unmarshal(req.DFG, g); err != nil {
			return nil, fmt.Errorf("parsing dfg: %w", err)
		}
	case req.Kernel != "":
		spec, err := kernels.ByName(req.Kernel)
		if err != nil {
			return nil, err
		}
		scale := req.Scale
		if scale <= 0 {
			scale = 1.0
		}
		g = spec.Build(scale)
	default:
		return nil, fmt.Errorf("request needs a kernel name or an inline dfg")
	}
	if err := g.Freeze(); err != nil {
		return nil, err
	}

	var a *arch.CGRA
	switch {
	case len(req.ArchDesc) > 0:
		var err error
		a, err = arch.ReadJSON(bytes.NewReader(req.ArchDesc))
		if err != nil {
			return nil, err
		}
	default:
		name := req.Arch
		if name == "" {
			name = "8x8"
		}
		var err error
		a, err = archPreset(name)
		if err != nil {
			return nil, err
		}
	}

	mapper := req.Mapper
	if mapper == "" {
		mapper = "pan-spr"
	}
	if !validMapper(mapper) {
		return nil, &UnknownMapperError{Name: mapper, Valid: Mappers()}
	}

	budgets := s.opts.Budgets
	if req.TimeoutMS > 0 {
		budgets.Total = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	return &resolved{
		graph:       g,
		arch:        a,
		mapper:      mapper,
		seed:        req.Seed,
		budgets:     budgets,
		fingerprint: Key(g, a, mapper, req.Seed, budgets),
		wait:        req.Wait,
		webhook:     req.Webhook,
	}, nil
}

// withMapper clones the resolved request onto a different mapper,
// recomputing the fingerprint (a different mapper is a different
// computation).
func (r *resolved) withMapper(m string) *resolved {
	c := *r
	c.mapper = m
	c.fingerprint = Key(c.graph, c.arch, m, c.seed, c.budgets)
	return &c
}

func validMapper(name string) bool {
	_, ok := core.LowerSpecOf(bareMapper(name))
	return ok
}

// bareMapper strips the guided-pipeline prefix: "pan-spr" → "spr".
func bareMapper(name string) string {
	if len(name) > len(panPrefix) && name[:len(panPrefix)] == panPrefix {
		return name[len(panPrefix):]
	}
	return name
}

// guided reports whether name selects the full Panorama pipeline
// rather than a bare baseline run.
func guided(name string) bool { return bareMapper(name) != name }

func archPreset(name string) (*arch.CGRA, error) {
	switch name {
	case "4x4":
		return arch.Preset4x4(), nil
	case "8x8":
		return arch.Preset8x8(), nil
	case "9x9":
		return arch.Preset9x9(), nil
	case "16x16":
		return arch.Preset16x16(), nil
	}
	return nil, fmt.Errorf("unknown architecture %q (want 4x4, 8x8, 9x9, 16x16)", name)
}
