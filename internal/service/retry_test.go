package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"panorama/internal/core"
	"panorama/internal/failure"
	"panorama/internal/faultinject"
)

// The retry classifier over every failure type of the taxonomy: each
// class must map to exactly the documented retry/no-retry/degrade
// decision.
func TestRetryDecisionTable(t *testing.T) {
	transient := errors.New("worker exploded")
	panicErr := failure.NewPanic(2, "boom", []byte("stack"))
	cases := []struct {
		name     string
		err      error
		attempt  int
		max      int
		mapper   string
		degraded bool
		watchdog bool
		want     decision
	}{
		{name: "nil error", err: nil, attempt: 1, max: 3, mapper: "pan-spr", want: decideFail},
		{name: "transient retries", err: transient, attempt: 1, max: 3, mapper: "pan-spr", want: decideRetry},
		{name: "transient at attempt cap", err: transient, attempt: 3, max: 3, mapper: "pan-spr", want: decideFail},
		{name: "staged transient retries", err: failure.Stage("lower", transient), attempt: 1, max: 3, mapper: "spr", want: decideRetry},
		{name: "panic retries", err: panicErr, attempt: 1, max: 3, mapper: "pan-spr", want: decideRetry},
		{name: "staged panic retries", err: failure.Stage("clustermap", panicErr), attempt: 2, max: 3, mapper: "pan-spr", want: decideRetry},
		{name: "watchdog trip retries", err: fmt.Errorf("run: %w", context.Canceled), attempt: 1, max: 3, mapper: "pan-spr", watchdog: true, want: decideRetry},
		{name: "watchdog at attempt cap", err: context.Canceled, attempt: 3, max: 3, mapper: "pan-spr", watchdog: true, want: decideFail},
		{name: "caller cancellation fails", err: failure.Stage("lower", fmt.Errorf("ctx: %w", failure.ErrCancelled)), attempt: 1, max: 3, mapper: "pan-spr", want: decideFail},
		{name: "raw context.Canceled fails", err: context.Canceled, attempt: 1, max: 3, mapper: "pan-spr", want: decideFail},
		{name: "infeasible never retries", err: failure.ErrInfeasible, attempt: 1, max: 3, mapper: "pan-spr", want: decideFail},
		{name: "staged infeasible never retries", err: failure.Stage("clustermap", fmt.Errorf("no ζ: %w", failure.ErrInfeasible)), attempt: 1, max: 3, mapper: "pan-spr", want: decideFail},
		{name: "budget degrades pan-spr", err: failure.ErrBudget, attempt: 1, max: 3, mapper: "pan-spr", want: decideDegrade},
		{name: "budget degrades spr", err: failure.Stage("lower", fmt.Errorf("t: %w", failure.ErrBudget)), attempt: 1, max: 3, mapper: "spr", want: decideDegrade},
		{name: "deadline counts as budget", err: context.DeadlineExceeded, attempt: 1, max: 3, mapper: "pan-spr", want: decideDegrade},
		{name: "budget with no cheaper rung fails", err: failure.ErrBudget, attempt: 1, max: 3, mapper: "ultrafast", want: decideFail},
		{name: "budget degrades only once", err: failure.ErrBudget, attempt: 2, max: 3, mapper: "pan-ultrafast", degraded: true, want: decideFail},
		{name: "budget at attempt cap fails", err: failure.ErrBudget, attempt: 3, max: 3, mapper: "pan-spr", want: decideFail},
		{name: "lower-failed is deterministic", err: fmt.Errorf("%w: every rung", failure.ErrLowerFailed), attempt: 1, max: 3, mapper: "pan-spr", want: decideFail},
	}
	for _, c := range cases {
		got := retryDecision(c.err, c.attempt, c.max, c.mapper, c.degraded, c.watchdog)
		if got != c.want {
			t.Errorf("%s: retryDecision = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDegradeMapperLadder(t *testing.T) {
	// The ladder comes from the core registry: portfolio → spr →
	// ultrafast, sat → spr, with "pan-" preserved across the step.
	for m, want := range map[string]string{
		"pan-portfolio": "pan-spr",
		"portfolio":     "spr",
		"pan-sat":       "pan-spr",
		"sat":           "spr",
		"pan-spr":       "pan-ultrafast",
		"spr":           "ultrafast",
		"pan-ultrafast": "",
		"ultrafast":     "",
		"bogus":         "",
	} {
		if got := DegradeMapper(m); got != want {
			t.Errorf("DegradeMapper(%q) = %q, want %q", m, got, want)
		}
	}
	// Every accepted request mapper must reach the bottom of the ladder
	// in finitely many steps — a cycle would retry forever.
	for _, m := range Mappers() {
		hops := 0
		for cur := m; cur != ""; cur = DegradeMapper(cur) {
			if hops++; hops > len(Mappers()) {
				t.Fatalf("degrade ladder from %q does not terminate", m)
			}
		}
	}
}

func TestBackoffBoundsAndJitter(t *testing.T) {
	if d := backoff(0, 1); d != 0 {
		t.Fatalf("backoff(0, 1) = %v, want 0", d)
	}
	for i := 0; i < 100; i++ {
		if d := backoff(50*time.Millisecond, 1); d < 25*time.Millisecond || d >= 75*time.Millisecond {
			t.Fatalf("backoff attempt 1 = %v, want [25ms, 75ms)", d)
		}
		if d := backoff(50*time.Millisecond, 2); d < 50*time.Millisecond || d >= 150*time.Millisecond {
			t.Fatalf("backoff attempt 2 = %v, want [50ms, 150ms)", d)
		}
		if d := backoff(50*time.Millisecond, 30); d < maxBackoff/2 || d >= maxBackoff+maxBackoff/2 {
			t.Fatalf("capped backoff = %v, want [%v, %v)", d, maxBackoff/2, maxBackoff+maxBackoff/2)
		}
	}
}

// A transiently failing executor: two worker faults, then success. The
// job must survive without the client ever seeing an error.
func TestRetryTransientFaultRecovers(t *testing.T) {
	var calls atomic.Int64
	srv, err := New(Options{
		Workers:   1,
		RetryBase: -1,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			if calls.Add(1) < 3 {
				return core.Summary{}, errors.New("transient worker fault")
			}
			return core.Summary{Kernel: "ok", Success: true, MII: 1, II: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, v := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","seed":1,"wait":true}`)
	if code != http.StatusOK || v.Status != JobDone {
		t.Fatalf("status %d view %+v, want a completed job", code, v)
	}
	if v.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", v.Attempts)
	}
	st := getStats(t, ts.URL)
	if st.Retried != 2 || st.Executed != 3 || st.Completed != 1 {
		t.Fatalf("retried=%d executed=%d completed=%d, want 2/3/1", st.Retried, st.Executed, st.Completed)
	}
}

// An over-budget guided run steps down to the UltraFast rung — and the
// degraded result must be cached under the degraded key, never under
// the original fingerprint.
func TestBudgetDegradesToCheaperMapper(t *testing.T) {
	srv, err := New(Options{
		Workers:   1,
		RetryBase: -1,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			if job.currentMapper() == "pan-spr" {
				return core.Summary{}, failure.Stage("clustermap", fmt.Errorf("sweep: %w", failure.ErrBudget))
			}
			return core.Summary{Kernel: "degraded", Success: true, MII: 1, II: 3}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, v := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","mapper":"pan-spr","seed":1,"wait":true}`)
	if code != http.StatusOK || v.Status != JobDone {
		t.Fatalf("status %d view %+v, want a completed job", code, v)
	}
	if v.RunMapper != "pan-ultrafast" || v.Attempts != 2 {
		t.Fatalf("runMapper=%q attempts=%d, want pan-ultrafast/2", v.RunMapper, v.Attempts)
	}
	if _, ok := srv.Cache().Get(v.Fingerprint); ok {
		t.Fatal("degraded result cached under the full-strength fingerprint (cache poisoning)")
	}
	if st := getStats(t, ts.URL); st.Degraded != 1 {
		t.Fatalf("degraded=%d, want 1", st.Degraded)
	}
	// The same request again must recompute (or re-degrade), never hit
	// the poisoned key.
	code, v2 := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","mapper":"pan-spr","seed":1,"wait":true}`)
	if code != http.StatusOK || v2.Cache == "hit" {
		t.Fatalf("second submission: status %d cache %q, want a fresh computation", code, v2.Cache)
	}
}

// A panicking executor is isolated to its attempt: the worker survives
// and the retry succeeds.
func TestPanicIsRetried(t *testing.T) {
	var calls atomic.Int64
	srv, err := New(Options{
		Workers:   1,
		RetryBase: -1,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			if calls.Add(1) == 1 {
				panic("mapper bug")
			}
			return core.Summary{Kernel: "ok", Success: true, MII: 1, II: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, v := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","seed":1,"wait":true}`)
	if code != http.StatusOK || v.Attempts != 2 {
		t.Fatalf("status %d attempts %d, want 200/2", code, v.Attempts)
	}
	if st := getStats(t, ts.URL); st.Retried != 1 {
		t.Fatalf("retried=%d, want 1", st.Retried)
	}
}

// The watchdog cancels a stalled run at Budgets.Total × grace and the
// stall — unlike a caller cancellation — is retried.
func TestWatchdogCancelsStalledRun(t *testing.T) {
	var calls atomic.Int64
	srv, err := New(Options{
		Workers:   1,
		RetryBase: -1,
		Budgets:   core.Budgets{Total: 30 * time.Millisecond},
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done() // a stalled worker: ignores its budget entirely
				return core.Summary{}, ctx.Err()
			}
			return core.Summary{Kernel: "ok", Success: true, MII: 1, II: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, v := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","seed":1,"wait":true}`)
	if code != http.StatusOK || v.Status != JobDone {
		t.Fatalf("status %d view %+v, want the stalled run retried to completion", code, v)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (stall + retry)", v.Attempts)
	}
	if st := getStats(t, ts.URL); st.Retried != 1 {
		t.Fatalf("retried=%d, want 1", st.Retried)
	}
}

// An injected service.run fault looks like a transient worker fault
// and drives one retry.
func TestServiceRunFaultInjection(t *testing.T) {
	defer faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteServiceRun, Kind: faultinject.Error, From: 1, Count: 1},
	}})()
	srv, err := New(Options{
		Workers:   1,
		RetryBase: -1,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			return core.Summary{Kernel: "ok", Success: true, MII: 1, II: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, v := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","seed":1,"wait":true}`)
	if code != http.StatusOK || v.Attempts != 2 {
		t.Fatalf("status %d attempts %d, want 200/2", code, v.Attempts)
	}
	if got := faultinject.Hits(faultinject.SiteServiceRun); got != 2 {
		t.Fatalf("service.run hits = %d, want 2", got)
	}
}

// A journal whose every append fails (dead disk) degrades the service
// to non-durable operation instead of refusing work.
func TestJournalAppendFaultDegradesGracefully(t *testing.T) {
	srv, err := New(Options{
		Workers:       1,
		RetryBase:     -1,
		JournalDir:    t.TempDir(),
		JournalNoSync: true,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			return core.Summary{Kernel: "ok", Success: true, MII: 1, II: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	disarm := faultinject.Arm(&faultinject.Plan{Rules: []faultinject.Rule{
		{Site: faultinject.SiteJournalAppend, Kind: faultinject.Error, From: 1},
	}})
	code, v := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","seed":1,"wait":true}`)
	disarm()
	if code != http.StatusOK || v.Status != JobDone {
		t.Fatalf("status %d view %+v: a failing journal must not fail jobs", code, v)
	}
	st := getStats(t, ts.URL)
	if st.JournalErrors == 0 {
		t.Fatal("journal append errors not counted")
	}
	// With the disk healthy again the journal resumes.
	code, _ = postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","seed":2,"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("post-fault submission: status %d", code)
	}
}
