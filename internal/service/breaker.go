package service

import "sync"

// breakerState is the service-level circuit state derived from the
// rolling failure rate of executed jobs.
type breakerState int

const (
	// breakerOK admits work normally.
	breakerOK breakerState = iota
	// breakerDegrade admits new work on the next-cheaper mapper rung.
	breakerDegrade
	// breakerShed refuses new work (503 + Retry-After).
	breakerShed
)

func (s breakerState) String() string {
	switch s {
	case breakerDegrade:
		return "degrade"
	case breakerShed:
		return "shed"
	}
	return "ok"
}

// breaker tracks the outcome of the last window executions in a ring.
// Two thresholds stage the response: past degradeAt the service
// degrades new admissions to the cheaper mapper (serving worse answers
// beats serving none), past shedAt it sheds load outright. Recovery is
// implicit — successes push failures out of the window. The breaker
// only judges with at least half a window of samples, so a single
// early failure can never trip it.
type breaker struct {
	mu        sync.Mutex
	ring      []bool // true = failure
	n, idx    int    // samples seen (≤ len(ring)), next write slot
	fails     int
	degradeAt float64
	shedAt    float64
}

// newBreaker sizes the rolling window; thresholds are failure-rate
// fractions in (0, 1]. A nil breaker (disabled) always reports
// breakerOK.
func newBreaker(window int, degradeAt, shedAt float64) *breaker {
	return &breaker{ring: make([]bool, window), degradeAt: degradeAt, shedAt: shedAt}
}

// record folds one terminal job outcome into the window.
func (b *breaker) record(failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == len(b.ring) {
		if b.ring[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.ring[b.idx] = failed
	if failed {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.ring)
}

// state judges the current window.
func (b *breaker) state() breakerState {
	if b == nil {
		return breakerOK
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n < len(b.ring)/2 || b.n == 0 {
		return breakerOK
	}
	rate := float64(b.fails) / float64(b.n)
	switch {
	case rate >= b.shedAt:
		return breakerShed
	case rate >= b.degradeAt:
		return breakerDegrade
	}
	return breakerOK
}

// failureRate reports the windowed failure fraction (0 with no
// samples).
func (b *breaker) failureRate() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == 0 {
		return 0
	}
	return float64(b.fails) / float64(b.n)
}
