package service

import (
	"errors"
	"math/rand"
	"time"

	"panorama/internal/core"
	"panorama/internal/failure"
)

// decision is what the retry policy chose for a failed execution
// attempt.
type decision int

const (
	// decideFail ends the job with its error.
	decideFail decision = iota
	// decideRetry re-runs the job after a backoff.
	decideRetry
	// decideDegrade re-runs the job once on the next-cheaper mapper
	// rung after a backoff.
	decideDegrade
)

func (d decision) String() string {
	switch d {
	case decideRetry:
		return "retry"
	case decideDegrade:
		return "degrade"
	}
	return "fail"
}

// DegradeMapper returns the next-cheaper rung of the mapper ladder for
// m, or "" when m is already the cheapest (or unknown). The ladder is
// the core lowering registry's: each mapper declares its own degrade
// target (portfolio → spr → ultrafast, sat → spr), so new mappers slot
// into the retry policy without edits here. A guided "pan-" mapper
// degrades to the guided form of its target — the pipeline shape is
// preserved, only the lowerer gets cheaper.
func DegradeMapper(m string) string {
	next := core.DegradeOf(bareMapper(m))
	if next == "" {
		return ""
	}
	if guided(m) {
		return panPrefix + next
	}
	return next
}

// retryDecision classifies a failed attempt against the failure
// taxonomy:
//
//   - watchdog trips (a stalled worker, surfacing as a cancellation)
//     retry: the stall, not the input, is suspect;
//   - ErrInfeasible never retries — the instance admits no solution
//     and re-running proves nothing;
//   - caller cancellations never retry — nobody is waiting;
//   - ErrBudget retries once at the next rung of the degrade ladder
//     (the cheaper mapper fits the same budget), and fails when the
//     job is already degraded or has nowhere cheaper to go;
//   - ErrLowerFailed is deterministic (every ladder rung failed hard)
//     and never retries;
//   - panics and unclassified errors are treated as transient — worker
//     faults, injected faults, races — and retry with backoff.
//
// attempt is the 1-based attempt that just failed; maxAttempts bounds
// the total (attempt budget, not retry count).
func retryDecision(err error, attempt, maxAttempts int, mapper string, degraded, watchdog bool) decision {
	if err == nil || attempt >= maxAttempts {
		// A degrade is still worth one over-budget attempt only when
		// the budget allows another run at all.
		return decideFail
	}
	switch {
	case watchdog:
		return decideRetry
	case failure.IsCancelled(err):
		return decideFail
	case failure.IsInfeasible(err):
		return decideFail
	case failure.IsBudget(err):
		if !degraded && DegradeMapper(mapper) != "" {
			return decideDegrade
		}
		return decideFail
	case errors.Is(err, failure.ErrLowerFailed):
		return decideFail
	default:
		return decideRetry
	}
}

// maxBackoff caps the exponential growth so a long retry chain never
// sleeps more than a few seconds between attempts.
const maxBackoff = 5 * time.Second

// backoff returns the sleep before re-running attempt+1: base doubled
// per prior attempt, capped, with ±50% jitter so a burst of failing
// jobs doesn't thunder back in lockstep.
func backoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	// Jitter in [d/2, 3d/2).
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}
