package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"panorama/internal/core"
)

func entry(fp string, ii int) Entry {
	return Entry{Fingerprint: fp, Summary: core.Summary{Kernel: fp, Success: true, II: ii, MII: ii}}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range []string{"a", "b"} {
		if err := c.Put(entry(fp, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if err := c.Put(entry("c", 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	for _, fp := range []string{"a", "c"} {
		if _, ok := c.Get(fp); !ok {
			t.Fatalf("%s missing after eviction", fp)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// Re-putting an existing key updates in place without eviction.
	if err := c.Put(entry("a", 7)); err != nil {
		t.Fatal(err)
	}
	if e, _ := c.Get("a"); e.Summary.II != 7 {
		t.Fatalf("update in place failed: II = %d", e.Summary.II)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after update, want 2", c.Len())
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry("deadbeef", 3)); err != nil {
		t.Fatal(err)
	}

	// Atomic write: the entry file exists, no temp droppings remain.
	if _, err := os.Stat(filepath.Join(dir, "deadbeef.json")); err != nil {
		t.Fatalf("persisted file missing: %v", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Fatalf("stray temp file %s after Put", de.Name())
		}
	}

	// A fresh cache on the same directory serves the entry (load-on-start).
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c2.Get("deadbeef")
	if !ok {
		t.Fatal("entry not loaded from disk")
	}
	if !e.Summary.Success || e.Summary.II != 3 {
		t.Fatalf("loaded entry corrupted: %+v", e.Summary)
	}
}

func TestCacheLoadSkipsCorruptAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry("good", 2)); err != nil {
		t.Fatal(err)
	}
	// Corrupt JSON, a file whose name disagrees with its content, and a
	// non-JSON file must not break startup or leak entries.
	if err := os.WriteFile(filepath.Join(dir, "corrupt.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "good.json"))
	if err := os.WriteFile(filepath.Join(dir, "renamed.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatalf("load with corrupt files failed: %v", err)
	}
	if _, ok := c2.Get("good"); !ok {
		t.Fatal("good entry lost")
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (corrupt/foreign files must be skipped)", c2.Len())
	}
}

func TestCacheLoadKeepsNewestWithinCapacity(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i, fp := range []string{"old", "mid", "new"} {
		if err := c.Put(entry(fp, i+1)); err != nil {
			t.Fatal(err)
		}
		// Separate the mtimes well beyond filesystem resolution.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, fp+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := NewCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("old"); ok {
		t.Fatal("oldest entry should not be loaded past capacity")
	}
	for _, fp := range []string{"mid", "new"} {
		if _, ok := c2.Get(fp); !ok {
			t.Fatalf("%s missing: newest entries must survive a capped load", fp)
		}
	}
}
