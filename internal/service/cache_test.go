package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"panorama/internal/core"
)

func entry(fp string, ii int) Entry {
	return Entry{Fingerprint: fp, Summary: core.Summary{Kernel: fp, Success: true, II: ii, MII: ii}}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range []string{"a", "b"} {
		if err := c.Put(entry(fp, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if err := c.Put(entry("c", 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	for _, fp := range []string{"a", "c"} {
		if _, ok := c.Get(fp); !ok {
			t.Fatalf("%s missing after eviction", fp)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// Re-putting an existing key updates in place without eviction.
	if err := c.Put(entry("a", 7)); err != nil {
		t.Fatal(err)
	}
	if e, _ := c.Get("a"); e.Summary.II != 7 {
		t.Fatalf("update in place failed: II = %d", e.Summary.II)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after update, want 2", c.Len())
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry("deadbeef", 3)); err != nil {
		t.Fatal(err)
	}

	// Atomic write: the entry file exists, no temp droppings remain.
	if _, err := os.Stat(filepath.Join(dir, "deadbeef.bin")); err != nil {
		t.Fatalf("persisted file missing: %v", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Fatalf("stray temp file %s after Put", de.Name())
		}
	}

	// A fresh cache on the same directory serves the entry (load-on-start).
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c2.Get("deadbeef")
	if !ok {
		t.Fatal("entry not loaded from disk")
	}
	if !e.Summary.Success || e.Summary.II != 3 {
		t.Fatalf("loaded entry corrupted: %+v", e.Summary)
	}
}

func TestCacheLoadSkipsCorruptAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry("good", 2)); err != nil {
		t.Fatal(err)
	}
	// Corrupt files in both formats, a file whose name disagrees with
	// its content, and a foreign file must not break startup or leak
	// entries.
	if err := os.WriteFile(filepath.Join(dir, "corrupt.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.bin"), []byte("PCEN\x01truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "good.bin"))
	if err := os.WriteFile(filepath.Join(dir, "renamed.bin"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A valid entry truncated mid-file — the classic torn write.
	if err := c.Put(entry("truncated", 5)); err != nil {
		t.Fatal(err)
	}
	tb, err := os.ReadFile(filepath.Join(dir, "truncated.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "truncated.bin"), tb[:len(tb)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatalf("load with corrupt files failed: %v", err)
	}
	if _, ok := c2.Get("good"); !ok {
		t.Fatal("good entry lost")
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (corrupt/foreign files must be skipped)", c2.Len())
	}
	// Skips are counted and surfaced: corrupt.json, corrupt.bin,
	// renamed.bin and the truncated entry. README is never a candidate.
	if got := c2.LoadSkipped(); got != 4 {
		t.Fatalf("LoadSkipped = %d, want 4", got)
	}
	if c.LoadSkipped() != 0 {
		t.Fatal("a cache that loaded nothing must report 0 skips")
	}
}

// The skip counter is exported as a metric family so operators see
// silent data loss in the cache directory without reading logs.
func TestCacheLoadSkippedMetricExported(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.bin"), []byte("PCEN"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{CacheDir: dir, Run: func(ctx context.Context, job *Job) (core.Summary, error) {
		return core.Summary{Success: true}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if srv.Cache().LoadSkipped() != 1 {
		t.Fatalf("LoadSkipped = %d, want 1", srv.Cache().LoadSkipped())
	}
	var sb strings.Builder
	if err := srv.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE panorama_cache_load_skipped_total counter") {
		t.Fatal("panorama_cache_load_skipped_total family missing from /metricsz")
	}
}

func TestCacheLoadKeepsNewestWithinCapacity(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i, fp := range []string{"old", "mid", "new"} {
		if err := c.Put(entry(fp, i+1)); err != nil {
			t.Fatal(err)
		}
		// Separate the mtimes well beyond filesystem resolution.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, fp+".bin"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := NewCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("old"); ok {
		t.Fatal("oldest entry should not be loaded past capacity")
	}
	for _, fp := range []string{"mid", "new"} {
		if _, ok := c2.Get(fp); !ok {
			t.Fatalf("%s missing: newest entries must survive a capped load", fp)
		}
	}
}

func TestCacheLoadsMixedFormats(t *testing.T) {
	dir := t.TempDir()
	// A directory written by an older build holds JSON entries; the
	// current build adds binary ones. Both must load side by side.
	jsonData, err := json.Marshal(entry("legacy", 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "legacy.json"), jsonData, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := c.Get("legacy"); !ok || e.Summary.II != 4 {
		t.Fatalf("legacy JSON entry not loaded: ok=%v %+v", ok, e.Summary)
	}
	if err := c.Put(entry("modern", 5)); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	for fp, ii := range map[string]int{"legacy": 4, "modern": 5} {
		e, ok := c2.Get(fp)
		if !ok || e.Summary.II != ii {
			t.Fatalf("%s: ok=%v II=%d, want II=%d", fp, ok, e.Summary.II, ii)
		}
	}
	if c2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c2.Len())
	}
}

func TestCacheLoadPrefersNewerDuplicateFormat(t *testing.T) {
	dir := t.TempDir()
	// The same fingerprint in both formats (an upgraded service rewrote
	// the entry): the newer file's content must win and the LRU must
	// hold it once, not twice.
	jsonData, err := json.Marshal(entry("dup", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dup.json"), jsonData, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-30 * time.Minute)
	if err := os.Chtimes(filepath.Join(dir, "dup.json"), old, old); err != nil {
		t.Fatal(err)
	}
	e := entry("dup", 9)
	binData, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dup.bin"), binData, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get("dup"); !ok || got.Summary.II != 9 {
		t.Fatalf("newer duplicate lost: ok=%v II=%d, want 9", ok, got.Summary.II)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (duplicate fingerprint must collapse)", c.Len())
	}
}

func TestCacheSweepsStaleTmpFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "crashed.123.tmp")
	if err := os.WriteFile(stale, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	// A fresh temp file may belong to a live writer in another process
	// and must survive the sweep.
	fresh := filepath.Join(dir, "inflight.456.tmp")
	if err := os.WriteFile(fresh, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := NewCache(8, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp not swept: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh tmp must be left alone: %v", err)
	}
}
