package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"panorama/internal/core"
	"panorama/internal/obs"
	"panorama/internal/spr"
	"panorama/internal/ultrafast"
)

// Admission and lifecycle sentinels, mapped onto HTTP status codes by
// the handler layer (429 and 503 respectively).
var (
	ErrOverloaded = errors.New("service: queue full")
	ErrDraining   = errors.New("service: shutting down")
)

// RunFunc executes one mapping job and returns its summary. The
// default (nil) runs the real Panorama pipeline; tests and alternative
// backends substitute their own.
type RunFunc func(ctx context.Context, job *Job) (core.Summary, error)

// Options tunes a Server.
type Options struct {
	// Workers is the number of jobs mapped concurrently (default 1:
	// mapping saturates cores by itself via PipelineWorkers).
	Workers int
	// QueueSize bounds the jobs waiting behind the running ones;
	// a full queue rejects submissions with ErrOverloaded (default 16).
	QueueSize int
	// PipelineWorkers is the worker-pool width inside each pipeline
	// (core.Config.Workers): 0 = one per CPU, 1 = serial.
	PipelineWorkers int
	// CacheSize is the in-memory LRU capacity (default
	// DefaultCacheSize); CacheDir enables disk persistence.
	CacheSize int
	CacheDir  string
	// Budgets is the default budget ladder applied to every job; a
	// request's timeoutMS overrides Budgets.Total.
	Budgets core.Budgets
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Run substitutes the job executor (tests, alternative backends).
	Run RunFunc
}

// JobStatus is the lifecycle of a Job.
type JobStatus string

// Job lifecycle states.
const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// Job is one accepted mapping computation. The identity fields are
// immutable; the outcome fields are guarded by mu and published by
// View (and by the done channel for waiters).
type Job struct {
	ID          string
	Fingerprint string
	Mapper      string
	Seed        int64
	Budgets     core.Budgets

	req *resolved

	mu       sync.Mutex
	status   JobStatus
	summary  *core.Summary
	err      error
	trace    *obs.Trace
	created  time.Time
	started  time.Time
	finished time.Time

	done chan struct{} // closed when the job reaches done/failed
}

// Trace returns the observability trace of the job's pipeline run, or
// nil before the job has started (it is live while the job runs —
// obs.Trace.Dump snapshots open spans safely).
func (j *Job) Trace() *obs.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the job's terminal error (nil while running or on
// success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Summary returns the job's result summary; ok is false until the job
// has one (a failed job may still carry the partial summary the
// pipeline salvaged).
func (j *Job) Summary() (core.Summary, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.summary == nil {
		return core.Summary{}, false
	}
	return *j.summary, true
}

// Server is the mapping-as-a-service engine, independent of its HTTP
// skin (http.go) so tests and embedders can drive it directly.
type Server struct {
	opts  Options
	cache *Cache
	stats stats

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job // by job id
	flight   map[string]*Job // by fingerprint: queued or running
	draining bool
	nextID   int

	queue   chan *Job
	running atomic.Int64
	wg      sync.WaitGroup
}

// New builds and starts a server (its workers run until Shutdown).
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 16
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	cache, err := NewCache(opts.CacheSize, opts.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:   opts,
		cache:  cache,
		jobs:   make(map[string]*Job),
		flight: make(map[string]*Job),
		queue:  make(chan *Job, opts.QueueSize),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if s.opts.Run == nil {
		s.opts.Run = s.runPipeline
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s, nil
}

// Cache exposes the server's result cache (read-mostly: /v1/result,
// stats, tests).
func (s *Server) Cache() *Cache { return s.cache }

// Outcome is what a submission produced: exactly one of Entry (cache
// hit) or Job (new or coalesced computation) is set.
type Outcome struct {
	Entry     *Entry
	Job       *Job
	Coalesced bool
}

// submit runs admission for a resolved request: cache lookup, then
// coalescing onto an identical in-flight job, then a bounded enqueue.
func (s *Server) submit(req *resolved) (Outcome, error) {
	if e, ok := s.cache.Get(req.fingerprint); ok {
		s.stats.submitted.Add(1)
		s.stats.hits.Add(1)
		return Outcome{Entry: &e}, nil
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Outcome{}, ErrDraining
	}
	if job, ok := s.flight[req.fingerprint]; ok {
		s.mu.Unlock()
		s.stats.submitted.Add(1)
		s.stats.coalesced.Add(1)
		return Outcome{Job: job, Coalesced: true}, nil
	}
	s.nextID++
	job := &Job{
		ID:          fmt.Sprintf("job-%06d", s.nextID),
		Fingerprint: req.fingerprint,
		Mapper:      req.mapper,
		Seed:        req.seed,
		Budgets:     req.budgets,
		req:         req,
		status:      JobQueued,
		created:     time.Now(),
		done:        make(chan struct{}),
	}
	s.jobs[job.ID] = job
	s.flight[job.Fingerprint] = job
	select {
	case s.queue <- job:
	default:
		// Admission control: the queue is full. Undo the registration
		// so the rejected job leaves no trace.
		delete(s.jobs, job.ID)
		delete(s.flight, job.Fingerprint)
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return Outcome{}, ErrOverloaded
	}
	s.mu.Unlock()
	s.stats.submitted.Add(1)
	s.stats.misses.Add(1)
	return Outcome{Job: job}, nil
}

// Job returns a previously accepted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one dequeued job and publishes its outcome.
func (s *Server) runJob(job *Job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	job.mu.Lock()
	job.status = JobRunning
	job.started = time.Now()
	job.mu.Unlock()
	s.stats.executed.Add(1)

	sum, err := s.opts.Run(s.baseCtx, job)

	job.mu.Lock()
	job.finished = time.Now()
	if err != nil {
		job.status = JobFailed
		job.err = err
		if sum.Kernel != "" || len(sum.Stages) > 0 {
			job.summary = &sum // partial result salvaged by the ladder
		}
	} else {
		job.status = JobDone
		job.summary = &sum
	}
	job.mu.Unlock()

	if err == nil {
		s.stats.completed.Add(1)
		s.stats.recordStages(sum)
		if perr := s.cache.Put(Entry{Fingerprint: job.Fingerprint, Summary: sum}); perr != nil {
			// Persistence is best-effort; the in-memory entry serves.
			log.Printf("service: %v", perr)
		}
	} else {
		s.stats.recordFailure(err)
		s.stats.recordStages(sum)
	}

	s.mu.Lock()
	delete(s.flight, job.Fingerprint)
	s.mu.Unlock()
	close(job.done)
}

// runPipeline is the default RunFunc: the real Panorama stack, mapper
// selected by name exactly as in the CLIs.
func (s *Server) runPipeline(ctx context.Context, job *Job) (core.Summary, error) {
	tr := obs.NewTrace(job.ID)
	job.mu.Lock()
	job.trace = tr
	job.mu.Unlock()
	ctx = obs.WithSpan(ctx, tr.Root())
	defer tr.Root().End()

	req := job.req
	cfg := core.Config{
		Seed:           job.Seed,
		RelaxOnFailure: true,
		Workers:        s.opts.PipelineWorkers,
		Budgets:        job.Budgets,
	}
	var res *core.Result
	var err error
	switch job.Mapper {
	case "pan-spr":
		res, err = core.MapPanoramaCtx(ctx, req.graph, req.arch, core.SPRLower{Options: spr.Options{Seed: job.Seed}}, cfg)
	case "pan-ultrafast":
		res, err = core.MapPanoramaCtx(ctx, req.graph, req.arch, core.UltraFastLower{Options: ultrafast.Options{}}, cfg)
	case "spr", "ultrafast":
		// Baselines take no Config; apply the total budget here.
		bctx := ctx
		if job.Budgets.Total > 0 {
			var cancel context.CancelFunc
			bctx, cancel = context.WithTimeout(ctx, job.Budgets.Total)
			defer cancel()
		}
		var lower core.Lower = core.SPRLower{Options: spr.Options{Seed: job.Seed}}
		if job.Mapper == "ultrafast" {
			lower = core.UltraFastLower{Options: ultrafast.Options{}}
		}
		res, err = core.MapBaselineCtx(bctx, req.graph, req.arch, lower)
	default:
		return core.Summary{}, fmt.Errorf("unknown mapper %q", job.Mapper)
	}
	if res == nil {
		return core.Summary{}, err
	}
	return res.Summarize(), err
}

// Shutdown stops accepting work, lets queued and in-flight jobs drain,
// and — if ctx fires first — cancels the remaining jobs' contexts and
// waits for them to unwind. It returns nil on a clean drain, ctx's
// error otherwise. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}
