package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"panorama/internal/cluster"
	"panorama/internal/core"
	"panorama/internal/failure"
	"panorama/internal/faultinject"
	"panorama/internal/journal"
	"panorama/internal/obs"
)

// Admission and lifecycle sentinels, mapped onto HTTP status codes by
// the handler layer (429, 503 and 503 + Retry-After respectively).
var (
	ErrOverloaded = errors.New("service: queue full")
	ErrDraining   = errors.New("service: shutting down")
	// ErrShedding rejects a submission because the circuit breaker's
	// rolling failure rate crossed Options.BreakerShed.
	ErrShedding = errors.New("service: shedding load")
)

// RunFunc executes one mapping job and returns its summary. The
// default (nil) runs the real Panorama pipeline; tests and alternative
// backends substitute their own.
type RunFunc func(ctx context.Context, job *Job) (core.Summary, error)

// Options tunes a Server.
type Options struct {
	// Workers is the number of jobs mapped concurrently (default 1:
	// mapping saturates cores by itself via PipelineWorkers).
	Workers int
	// QueueSize bounds the jobs waiting behind the running ones;
	// a full queue rejects submissions with ErrOverloaded (default 16).
	QueueSize int
	// PipelineWorkers is the worker-pool width inside each pipeline
	// (core.Config.Workers): 0 = one per CPU, 1 = serial.
	PipelineWorkers int
	// CacheSize is the in-memory LRU capacity (default
	// DefaultCacheSize); CacheDir enables disk persistence.
	CacheSize int
	CacheDir  string
	// Budgets is the default budget ladder applied to every job; a
	// request's timeoutMS overrides Budgets.Total.
	Budgets core.Budgets
	// RetryAfter is the Retry-After fallback for 429/503 responses,
	// used until the drain estimator has observed at least one recent
	// completion (default 1s).
	RetryAfter time.Duration
	// Run substitutes the job executor (tests, alternative backends).
	Run RunFunc
	// WrapRun decorates the executor after the default is resolved, so
	// harnesses can observe every execution of the real pipeline
	// (exactly-once accounting in load tests) without replacing it.
	WrapRun func(RunFunc) RunFunc

	// MaxBodyBytes bounds a request body before JSON decoding; an
	// oversized body gets 413 (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchItems bounds the items in one POST /v1/batch request
	// (default 64).
	MaxBatchItems int
	// SSEHeartbeat is the keep-alive comment interval on idle event
	// streams (default 15s).
	SSEHeartbeat time.Duration

	// JournalDir enables the crash-safe job journal: every accepted
	// job's lifecycle is logged there, and New replays the journal to
	// re-enqueue jobs a previous process left unfinished. Empty
	// disables durability (the pre-journal behavior).
	JournalDir string
	// JournalSegmentBytes overrides the journal's compaction threshold
	// (0 = journal.DefaultSegmentBytes); JournalNoSync skips the fsync
	// per append (tests only).
	JournalSegmentBytes int64
	JournalNoSync       bool

	// MaxAttempts bounds executions per job, counting attempts replayed
	// from the journal, so a poison job gets at most one run per
	// restart (default 3).
	MaxAttempts int
	// RetryBase seeds the exponential retry backoff (default 50ms;
	// negative disables the sleep entirely).
	RetryBase time.Duration
	// WatchdogGrace cancels and retries a run exceeding
	// Budgets.Total × WatchdogGrace — a stalled worker, since the
	// pipeline enforces Total itself (default 1.5; negative disables;
	// jobs with no Total budget are never watched).
	WatchdogGrace float64
	// BreakerWindow sizes the rolling window of terminal job outcomes
	// behind the service breaker (default 16; negative disables).
	// BreakerDegrade and BreakerShed are the failure-rate fractions at
	// which new admissions degrade to the cheaper mapper rung
	// (default 0.5) and are shed with 503 + Retry-After (default 0.8).
	BreakerWindow  int
	BreakerDegrade float64
	BreakerShed    float64

	// Cluster shards the content-addressed cache across a panoramad
	// fleet: jobs whose fingerprint another peer owns are forwarded
	// there at execution time (falling back to local execution when the
	// owner is down). Nil runs the server standalone.
	Cluster *cluster.Cluster
	// GossipInterval is the peer health-probe and cache-fill cadence
	// (0 disables gossip; forwarding still works without it).
	GossipInterval time.Duration

	// WebhookURL makes every terminal job fire a signed POST there
	// (per-request Request.Webhook overrides the destination). Empty
	// disables webhooks unless a request names its own.
	WebhookURL string
	// WebhookSecret keys the HMAC-SHA256 body signature
	// (X-Panorama-Signature); empty sends unsigned webhooks.
	WebhookSecret string
	// WebhookTimeout bounds one delivery attempt (default 10s);
	// WebhookMaxAttempts bounds the retry ladder per event (default 3).
	WebhookTimeout     time.Duration
	WebhookMaxAttempts int
}

// JobStatus is the lifecycle of a Job.
type JobStatus string

// Job lifecycle states.
const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
	// JobRequeued marks a job a draining server handed back to the
	// journal instead of executing; the next process re-runs it.
	JobRequeued JobStatus = "requeue-on-restart"
)

// Job is one accepted mapping computation. The identity fields are
// immutable; the outcome fields are guarded by mu and published by
// View (and by the done channel for waiters).
type Job struct {
	ID          string
	Fingerprint string
	Mapper      string
	Seed        int64
	Budgets     core.Budgets

	req *resolved

	mu       sync.Mutex
	status   JobStatus
	summary  *core.Summary
	err      error
	trace    *obs.Trace
	created  time.Time
	started  time.Time
	finished time.Time

	attempts  int    // executions so far (journal-replayed ones included)
	runMapper string // mapper of the current attempt ("" = Mapper)
	degraded  bool   // the retry ladder or breaker stepped the mapper down
	origin    string // forwarding peer's URL when the job arrived via the ring
	noForward bool   // this job already spent its one forward hop

	events *eventLog // state transitions for the SSE surface

	done chan struct{} // closed when the job reaches a terminal status
}

// Attempts returns how many executions the job has consumed,
// including attempts replayed from the journal after a restart.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// beginAttempt charges one execution and moves the job to running.
func (j *Job) beginAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts++
	j.status = JobRunning
	if j.started.IsZero() {
		j.started = time.Now()
	}
	return j.attempts
}

// currentMapper is the mapper the next attempt runs with — Mapper
// unless the job was degraded to a cheaper rung.
func (j *Job) currentMapper() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.runMapper != "" {
		return j.runMapper
	}
	return j.Mapper
}

// isDegraded reports whether the job already stepped down the ladder.
func (j *Job) isDegraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// degradeTo steps the job down to mapper m for its next attempt.
func (j *Job) degradeTo(m string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.runMapper = m
	j.degraded = true
}

// Origin returns the URL of the peer that forwarded this job here (""
// for jobs submitted by ordinary clients).
func (j *Job) Origin() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.origin
}

// disableForward spends the job's single forward hop: every later
// attempt runs locally.
func (j *Job) disableForward() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.noForward = true
}

// forwardSpent reports whether the job may still be forwarded.
func (j *Job) forwardSpent() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.noForward
}

// Trace returns the observability trace of the job's pipeline run, or
// nil before the job has started (it is live while the job runs —
// obs.Trace.Dump snapshots open spans safely).
func (j *Job) Trace() *obs.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the job's terminal error (nil while running or on
// success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Summary returns the job's result summary; ok is false until the job
// has one (a failed job may still carry the partial summary the
// pipeline salvaged).
func (j *Job) Summary() (core.Summary, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.summary == nil {
		return core.Summary{}, false
	}
	return *j.summary, true
}

// Server is the mapping-as-a-service engine, independent of its HTTP
// skin (http.go) so tests and embedders can drive it directly.
type Server struct {
	opts    Options
	cache   *Cache
	stats   stats
	journal *journal.Journal // nil without Options.JournalDir
	breaker *breaker         // nil when disabled

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	jobs      map[string]*Job   // by job id
	flight    map[string]*Job   // by fingerprint: queued or running
	batches   map[string]*Batch // by batch id
	draining  bool
	nextID    int
	nextBatch int

	queue   chan *Job
	running atomic.Int64
	wg      sync.WaitGroup

	drain *drainEstimator // recent completions → Retry-After hints

	webhooks *webhookNotifier // nil without a webhook destination path

	recentMu sync.Mutex
	recent   []string // most recently completed fingerprints, newest last

	gossipStop chan struct{}
	gossipOnce sync.Once
	gossipWG   sync.WaitGroup
}

// New builds and starts a server (its workers run until Shutdown).
// With Options.JournalDir set it first replays the journal and
// re-enqueues every job a previous process accepted but never
// finished — jobs whose result meanwhile sits in the cache resolve
// without re-running.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 16
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.RetryBase == 0 {
		opts.RetryBase = 50 * time.Millisecond
	}
	if opts.RetryBase < 0 {
		opts.RetryBase = 0
	}
	if opts.WatchdogGrace == 0 {
		opts.WatchdogGrace = 1.5
	}
	if opts.BreakerWindow == 0 {
		opts.BreakerWindow = 16
	}
	if opts.BreakerDegrade <= 0 {
		opts.BreakerDegrade = 0.5
	}
	if opts.BreakerShed <= 0 {
		opts.BreakerShed = 0.8
	}
	cache, err := NewCache(opts.CacheSize, opts.CacheDir)
	if err != nil {
		return nil, err
	}
	var jn *journal.Journal
	var pending []journal.Record
	if opts.JournalDir != "" {
		jn, err = journal.Open(opts.JournalDir, journal.Options{
			SegmentBytes: opts.JournalSegmentBytes,
			NoSync:       opts.JournalNoSync,
		})
		if err != nil {
			return nil, err
		}
		pending = jn.Pending()
	}
	qsize := opts.QueueSize
	if len(pending) > qsize {
		// Recovery must never deadlock on its own queue.
		qsize = len(pending)
	}
	s := &Server{
		opts:       opts,
		cache:      cache,
		journal:    jn,
		jobs:       make(map[string]*Job),
		flight:     make(map[string]*Job),
		batches:    make(map[string]*Batch),
		queue:      make(chan *Job, qsize),
		drain:      newDrainEstimator(),
		gossipStop: make(chan struct{}),
	}
	s.webhooks = newWebhookNotifier(&s.stats, opts)
	if opts.BreakerWindow > 0 {
		s.breaker = newBreaker(opts.BreakerWindow, opts.BreakerDegrade, opts.BreakerShed)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if s.opts.Run == nil {
		s.opts.Run = s.runPipeline
	}
	if s.opts.WrapRun != nil {
		s.opts.Run = s.opts.WrapRun(s.opts.Run)
	}
	if len(pending) > 0 {
		s.recoverJobs(pending)
		st := jn.Stats()
		log.Printf("service: journal: recovered %d job(s) from %d segment(s), %d record(s) replayed, %d torn byte(s) dropped",
			len(pending), st.Segments, st.Replayed, st.DroppedBytes)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	if opts.Cluster != nil && opts.GossipInterval > 0 {
		s.gossipWG.Add(1)
		go s.gossipLoop()
	}
	return s, nil
}

// JournalStats snapshots the job journal's replay and lifetime
// counters; ok is false when the server runs without a journal.
func (s *Server) JournalStats() (journal.Stats, bool) {
	if s.journal == nil {
		return journal.Stats{}, false
	}
	return s.journal.Stats(), true
}

// Cache exposes the server's result cache (read-mostly: /v1/result,
// stats, tests).
func (s *Server) Cache() *Cache { return s.cache }

// Outcome is what a submission produced: exactly one of Entry (cache
// hit) or Job (new or coalesced computation) is set. Dup marks a
// coalescing within a single batch (two items with one fingerprint)
// rather than onto a previously in-flight job.
type Outcome struct {
	Entry     *Entry
	Job       *Job
	Coalesced bool
	Dup       bool
}

// submit runs admission for a resolved request: cache lookup, breaker
// check, then coalescing onto an identical in-flight job, then a
// bounded enqueue. Cache hits are served even while the breaker sheds —
// they cost nothing and can't fail.
func (s *Server) submit(req *resolved) (Outcome, error) {
	if e, ok := s.cache.Get(req.fingerprint); ok {
		s.stats.submitted.Add(1)
		s.stats.hits.Add(1)
		return Outcome{Entry: &e}, nil
	}
	switch s.breaker.state() {
	case breakerShed:
		s.stats.shed.Add(1)
		return Outcome{}, ErrShedding
	case breakerDegrade:
		if m := DegradeMapper(req.mapper); m != "" {
			// Serve a worse answer rather than none: admit the job on
			// the next-cheaper mapper rung (which gets its own
			// fingerprint — a degraded result must never answer a
			// later full-strength request).
			req = req.withMapper(m)
			s.stats.degraded.Add(1)
			if e, ok := s.cache.Get(req.fingerprint); ok {
				s.stats.submitted.Add(1)
				s.stats.hits.Add(1)
				return Outcome{Entry: &e}, nil
			}
		}
	}

	var blob []byte
	if s.journal != nil {
		var berr error
		if blob, berr = encodeJobPayload(req); berr != nil {
			// The job still runs; it just can't be replayed.
			log.Printf("service: %v", berr)
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Outcome{}, ErrDraining
	}
	if job, ok := s.flight[req.fingerprint]; ok {
		s.mu.Unlock()
		s.stats.submitted.Add(1)
		s.stats.coalesced.Add(1)
		return Outcome{Job: job, Coalesced: true}, nil
	}
	// An in-flight twin may have reached its terminal state between the
	// unlocked cache check above and this lock. finishDone publishes to
	// the cache before unregistering, and unregister synchronizes on
	// s.mu, so when the flight index is empty here a re-check cannot
	// miss the twin's result — without it, a submission landing in that
	// window would re-execute a fingerprint that just completed
	// (visible fleet-wide: three peers issuing identical streams hit
	// completion boundaries constantly).
	if e, ok := s.cache.Get(req.fingerprint); ok {
		s.mu.Unlock()
		s.stats.submitted.Add(1)
		s.stats.hits.Add(1)
		return Outcome{Entry: &e}, nil
	}
	s.nextID++
	job := &Job{
		ID:          fmt.Sprintf("job-%06d", s.nextID),
		Fingerprint: req.fingerprint,
		Mapper:      req.mapper,
		Seed:        req.seed,
		Budgets:     req.budgets,
		req:         req,
		origin:      req.origin,
		status:      JobQueued,
		created:     time.Now(),
		done:        make(chan struct{}),
		events:      newEventLog(),
	}
	s.jobs[job.ID] = job
	s.flight[job.Fingerprint] = job
	// The Submitted record goes in before the job can be dequeued so a
	// worker's Started record never precedes it in the journal — and
	// the queued event before the enqueue, so no subscriber can see a
	// running event first. (A queue-full rollback leaves a stray queued
	// event on a job nobody can ever address; harmless.) Peer-forwarded
	// jobs journal their origin so a post-crash operator can tell
	// replayed fleet traffic from local submissions.
	note := ""
	if req.origin != "" {
		note = "origin:" + req.origin
	}
	s.jlog(Record{Kind: journal.Submitted, JobID: job.ID, Key: job.Fingerprint, Note: note, Blob: blob})
	job.emit(JobQueued)
	select {
	case s.queue <- job:
	default:
		// Admission control: the queue is full. Undo the registration
		// so the rejected job leaves no trace.
		delete(s.jobs, job.ID)
		delete(s.flight, job.Fingerprint)
		s.mu.Unlock()
		s.jlog(Record{Kind: journal.Cancelled, JobID: job.ID, Key: job.Fingerprint, Note: "queue full"})
		s.stats.rejected.Add(1)
		return Outcome{}, ErrOverloaded
	}
	s.mu.Unlock()
	s.stats.submitted.Add(1)
	s.stats.misses.Add(1)
	return Outcome{Job: job}, nil
}

// Job returns a previously accepted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one dequeued job through the retry ladder and
// publishes its outcome. A draining journal-backed server hands
// still-queued jobs back to the journal instead of executing them;
// a job whose result already sits in the cache (recovered duplicates,
// a twin completed on a shared cache dir) resolves without running.
func (s *Server) runJob(job *Job) {
	s.running.Add(1)
	defer s.running.Add(-1)

	if s.journal != nil && s.isDraining() {
		s.finishRequeued(job)
		return
	}
	if e, ok := s.cache.Get(job.Fingerprint); ok {
		s.finishFromCache(job, e)
		return
	}

	for {
		attempt := job.beginAttempt()
		s.jlog(Record{Kind: journal.Started, JobID: job.ID, Key: job.Fingerprint,
			Attempt: attempt, Note: job.currentMapper()})
		job.emit(JobRunning)

		sum, err, watchdog := s.runAttempt(job)
		if err == nil {
			s.finishDone(job, sum)
			return
		}
		switch retryDecision(err, attempt, s.opts.MaxAttempts, job.currentMapper(), job.isDegraded(), watchdog) {
		case decideFail:
			s.finishFailed(job, sum, err)
			return
		case decideDegrade:
			next := DegradeMapper(job.currentMapper())
			log.Printf("service: job %s attempt %d over budget; degrading to %s", job.ID, attempt, next)
			job.degradeTo(next)
			s.stats.degraded.Add(1)
		default:
			s.stats.retried.Add(1)
		}
		if d := backoff(s.opts.RetryBase, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-s.baseCtx.Done():
				t.Stop()
				s.finishFailed(job, sum, err)
				return
			}
		}
		if s.journal != nil && s.isDraining() {
			// The server started draining during the backoff; leave
			// the retry to the next process.
			s.finishRequeued(job)
			return
		}
	}
}

// runAttempt executes one attempt under the watchdog, converting a
// panicking executor into a PanicError instead of killing the worker.
// watchdog reports whether the stall watchdog — not the caller —
// cancelled the run.
func (s *Server) runAttempt(job *Job) (sum core.Summary, err error, watchdog bool) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	var tripped atomic.Bool
	if d := s.watchdogDeadline(job); d > 0 {
		t := time.AfterFunc(d, func() {
			tripped.Store(true)
			cancel()
		})
		defer t.Stop()
	}
	defer func() {
		if r := recover(); r != nil {
			err = failure.NewPanic(-1, r, debug.Stack())
		}
		watchdog = tripped.Load()
	}()
	if ferr := faultinject.Fire(faultinject.SiteServiceRun); ferr != nil {
		return core.Summary{}, fmt.Errorf("service: run %s: %w", job.ID, ferr), false
	}
	if owner, ok := s.shouldForward(job); ok {
		// Another peer owns this fingerprint: delegate the execution.
		// An unhandled outcome (owner down, ring disagreement) falls
		// through to local execution within the same attempt — the
		// fleet degrades to standalone behavior, never to an error.
		if fsum, ferr, handled := s.forwardAttempt(ctx, job, owner); handled {
			return fsum, ferr, tripped.Load()
		}
	}
	// Count only attempts that reach the local executor: a forwarded
	// attempt is the owner's execution, and counting it here too would
	// make a fleet's summed executed_total read as duplicate work.
	s.stats.executed.Add(1)
	sum, err = s.opts.Run(ctx, job)
	return sum, err, tripped.Load()
}

// watchdogDeadline is how long an attempt may run before the watchdog
// cancels it (0 = unwatched).
func (s *Server) watchdogDeadline(job *Job) time.Duration {
	if s.opts.WatchdogGrace < 0 || job.Budgets.Total <= 0 {
		return 0
	}
	return time.Duration(float64(job.Budgets.Total) * s.opts.WatchdogGrace)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// finishDone publishes a successful attempt: cache, journal, breaker,
// waiters.
func (s *Server) finishDone(job *Job, sum core.Summary) {
	job.mu.Lock()
	job.finished = time.Now()
	job.status = JobDone
	job.summary = &sum
	degraded := job.degraded
	mapper := job.runMapper
	job.mu.Unlock()
	s.stats.completed.Add(1)
	s.stats.recordStages(sum)
	key := job.Fingerprint
	note := ""
	if degraded {
		// A degraded run answers a cheaper computation than the one
		// the fingerprint names; caching it under the original key
		// would poison future full-strength requests.
		key = Key(job.req.graph, job.req.arch, mapper, job.Seed, job.Budgets)
		note = "degraded to " + mapper
	}
	if perr := s.cache.Put(Entry{Fingerprint: key, Summary: sum}); perr != nil {
		// Persistence is best-effort; the in-memory entry serves.
		log.Printf("service: %v", perr)
	}
	s.jlog(Record{Kind: journal.Completed, JobID: job.ID, Key: job.Fingerprint,
		Attempt: job.Attempts(), Note: note})
	s.breaker.record(false)
	s.drain.record()
	s.rememberFingerprint(key)
	s.unregister(job)
	job.emit(JobDone)
	close(job.done)
	s.webhooks.notify(s, job)
}

// finishFailed publishes a terminal failure (salvaging the partial
// summary the ladder returned, when there is one).
func (s *Server) finishFailed(job *Job, sum core.Summary, err error) {
	job.mu.Lock()
	job.finished = time.Now()
	job.status = JobFailed
	job.err = err
	if sum.Kernel != "" || len(sum.Stages) > 0 {
		job.summary = &sum // partial result salvaged by the ladder
	}
	job.mu.Unlock()
	s.stats.recordFailure(err)
	s.stats.recordStages(sum)
	s.jlog(Record{Kind: journal.Failed, JobID: job.ID, Key: job.Fingerprint,
		Attempt: job.Attempts(), Note: failureClass(err)})
	s.breaker.record(true)
	s.drain.record()
	s.unregister(job)
	job.emit(JobFailed)
	close(job.done)
	s.webhooks.notify(s, job)
}

// finishRequeued hands a job back to the journal for the next process.
func (s *Server) finishRequeued(job *Job) {
	job.mu.Lock()
	job.finished = time.Now()
	job.status = JobRequeued
	job.mu.Unlock()
	s.stats.requeued.Add(1)
	s.jlog(Record{Kind: journal.Requeued, JobID: job.ID, Key: job.Fingerprint,
		Attempt: job.Attempts(), Note: "draining"})
	s.unregister(job)
	job.emit(JobRequeued)
	close(job.done)
}

// finishFromCache resolves a job from an existing cache entry without
// executing it (the breaker sees no sample — nothing ran).
func (s *Server) finishFromCache(job *Job, e Entry) {
	job.mu.Lock()
	job.finished = time.Now()
	job.status = JobDone
	job.summary = &e.Summary
	job.mu.Unlock()
	s.stats.completed.Add(1)
	s.jlog(Record{Kind: journal.Completed, JobID: job.ID, Key: job.Fingerprint,
		Note: "resolved from cache"})
	s.drain.record()
	s.unregister(job)
	job.emit(JobDone)
	close(job.done)
	s.webhooks.notify(s, job)
}

// unregister drops the job from the in-flight index.
func (s *Server) unregister(job *Job) {
	s.mu.Lock()
	if s.flight[job.Fingerprint] == job {
		delete(s.flight, job.Fingerprint)
	}
	s.mu.Unlock()
}

// runPipeline is the default RunFunc: the real Panorama stack, mapper
// selected by name exactly as in the CLIs.
func (s *Server) runPipeline(ctx context.Context, job *Job) (core.Summary, error) {
	tr := obs.NewTrace(job.ID)
	job.mu.Lock()
	job.trace = tr
	job.mu.Unlock()
	// The retry/degrade provenance on the root span: a retried job's
	// trace says which attempt this is and which rung it ran on.
	tr.Root().Set("attempt", int64(job.Attempts()))
	tr.Root().Set("mapper", job.currentMapper())
	if job.isDegraded() {
		tr.Root().Set("degraded", "true")
	}
	ctx = obs.WithSpan(ctx, tr.Root())
	defer tr.Root().End()

	req := job.req
	cfg := core.Config{
		Seed:           job.Seed,
		RelaxOnFailure: true,
		Workers:        s.opts.PipelineWorkers,
		Budgets:        job.Budgets,
	}
	// The mapper comes from the core lowering registry; "pan-" selects
	// the guided pipeline around it, the bare name runs it as a
	// baseline.
	name := job.currentMapper()
	lower, err := core.NewLowerByName(bareMapper(name), job.Seed)
	if err != nil {
		return core.Summary{}, err
	}
	var res *core.Result
	if guided(name) {
		res, err = core.MapPanoramaCtx(ctx, req.graph, req.arch, lower, cfg)
	} else {
		// Baselines take no Config; apply the total budget here.
		bctx := ctx
		if job.Budgets.Total > 0 {
			var cancel context.CancelFunc
			bctx, cancel = context.WithTimeout(ctx, job.Budgets.Total)
			defer cancel()
		}
		res, err = core.MapBaselineCtx(bctx, req.graph, req.arch, lower)
	}
	if res == nil {
		return core.Summary{}, err
	}
	return res.Summarize(), err
}

// Shutdown stops accepting work, lets queued and in-flight jobs drain,
// and — if ctx fires first — cancels the remaining jobs' contexts and
// waits for them to unwind. It returns nil on a clean drain, ctx's
// error otherwise. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	s.gossipOnce.Do(func() { close(s.gossipStop) })
	s.gossipWG.Wait()
	s.webhooks.close(ctx)
	if s.journal != nil {
		// The workers have unwound (their terminal records are in), so
		// the journal can close; jobs it still holds live replay on the
		// next start.
		if cerr := s.journal.Close(); cerr != nil {
			log.Printf("service: journal close: %v", cerr)
		}
	}
	return err
}
