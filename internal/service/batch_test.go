package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"panorama/internal/core"
)

func postBatch(t *testing.T, url string, body string) (int, http.Header, BatchView) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v BatchView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("batch response: %v\n%s", err, data)
		}
	}
	return resp.StatusCode, resp.Header, v
}

// countingRun is a stub executor that tallies executions per
// fingerprint, so tests can assert exactly-once under dedup.
func countingRun() (RunFunc, func(fp string) int) {
	var mu sync.Mutex
	counts := map[string]int{}
	run := func(ctx context.Context, job *Job) (core.Summary, error) {
		mu.Lock()
		counts[job.Fingerprint]++
		mu.Unlock()
		return core.Summary{Kernel: "stub", Success: true}, nil
	}
	return run, func(fp string) int {
		mu.Lock()
		defer mu.Unlock()
		return counts[fp]
	}
}

// One POST /v1/batch: per-item cache hits, within-batch dedup, fresh
// enqueues and per-item typed errors all coexist in a single
// partial-success response, and a deduped fingerprint executes once.
func TestBatchSubmit(t *testing.T) {
	run, countOf := countingRun()
	srv, err := New(Options{Workers: 2, QueueSize: 16, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the cache with seed 9 so the batch sees one hit.
	if code, _ := postMap(t, ts.URL, `{"kernel":"fir","seed":9,"wait":true}`); code != http.StatusOK {
		t.Fatalf("warmup: status %d", code)
	}

	code, _, v := postBatch(t, ts.URL, `{
		"mapper": "pan-spr", "wait": true,
		"items": [
			{"kernel": "fir", "seed": 1},
			{"kernel": "fir", "seed": 1},
			{"kernel": "fir", "seed": 2},
			{"kernel": "fir", "seed": 9},
			{"kernel": "fir", "seed": 3, "mapper": "no-such-mapper"},
			{"kernel": "no-such-kernel", "seed": 4}
		]
	}`)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d, want 200 (wait=true, all terminal): %+v", code, v)
	}
	if !v.Done || v.ID == "" {
		t.Fatalf("batch not done: %+v", v)
	}
	if v.Hits != 1 || v.Dups != 1 || v.Enqueued != 2 || v.Errors != 2 || v.Coalesced != 0 {
		t.Fatalf("batch tallies: %+v", v)
	}
	if len(v.Items) != 6 {
		t.Fatalf("batch has %d items, want 6", len(v.Items))
	}
	// Items 0 and 1 share a fingerprint; item 1 is the dup and both
	// resolve to the same done job.
	if v.Items[0].Fingerprint != v.Items[1].Fingerprint {
		t.Fatalf("items 0/1 fingerprints differ: %+v", v.Items[:2])
	}
	if v.Items[1].Cache != "dup" || v.Items[1].JobID != v.Items[0].JobID {
		t.Fatalf("item 1 not deduped onto item 0: %+v", v.Items[1])
	}
	if v.Items[0].Status != JobDone || v.Items[0].Result == nil {
		t.Fatalf("item 0 not done: %+v", v.Items[0])
	}
	if v.Items[3].Cache != "hit" || v.Items[3].Result == nil {
		t.Fatalf("item 3 not a cache hit: %+v", v.Items[3])
	}
	if v.Items[4].Error == nil || v.Items[4].Error.Class != "unknown-mapper" || len(v.Items[4].Error.Valid) == 0 {
		t.Fatalf("item 4 error: %+v", v.Items[4].Error)
	}
	if v.Items[5].Error == nil || v.Items[5].Error.Class != "bad-request" {
		t.Fatalf("item 5 error: %+v", v.Items[5].Error)
	}
	if n := countOf(v.Items[0].Fingerprint); n != 1 {
		t.Fatalf("deduped fingerprint executed %d times, want 1", n)
	}

	// GET /v1/batch/{id} replays the same view.
	resp, err := http.Get(ts.URL + "/v1/batch/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got BatchView
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.ID != v.ID || got.Hits != v.Hits || len(got.Items) != len(v.Items) {
		t.Fatalf("GET batch disagrees: %+v vs %+v", got, v)
	}

	// The admission span is addressable as a trace.
	if d, code := getTrace(t, ts.URL, v.ID); code != http.StatusOK || d.Name != "batch" {
		t.Fatalf("batch trace: status %d dump %+v", code, d)
	}

	st := getStats(t, ts.URL)
	if st.BatchRequests != 1 || st.BatchItemsHit != 1 || st.BatchItemsDup != 1 ||
		st.BatchItemsEnqueued != 2 || st.BatchItemsError != 2 {
		t.Fatalf("batch stats: %+v", st)
	}

	if code, _, _ := postBatch(t, ts.URL, `{"items":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	resp, err = http.Get(ts.URL + "/v1/batch/batch-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown batch: status %d, want 404", resp.StatusCode)
	}
}

// Batch admission is atomic: when the queue cannot take every new job
// the batch needs, the whole batch is rejected with 429 + Retry-After
// and no item is admitted — no partial fan-out.
func TestBatchAtomicAdmission(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	run := func(ctx context.Context, job *Job) (core.Summary, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return core.Summary{Kernel: "stub", Success: true}, nil
	}
	srv, err := New(Options{Workers: 1, QueueSize: 1, Run: run, RetryAfter: 7 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		srv.Shutdown(context.Background())
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the worker, then the single queue slot.
	if code, _ := postMap(t, ts.URL, `{"kernel":"fir","seed":1}`); code != http.StatusAccepted {
		t.Fatalf("job 1: status %d", code)
	}
	<-started
	if code, _ := postMap(t, ts.URL, `{"kernel":"fir","seed":2}`); code != http.StatusAccepted {
		t.Fatalf("job 2: status %d", code)
	}

	before := getStats(t, ts.URL)
	code, hdr, _ := postBatch(t, ts.URL, `{"items":[{"kernel":"fir","seed":3},{"kernel":"fir","seed":4}]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("batch over capacity: status %d, want 429", code)
	}
	// No completions observed yet → the configured fallback, whole
	// seconds.
	if got := hdr.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}
	after := getStats(t, ts.URL)
	if after.BatchRejected != before.BatchRejected+1 {
		t.Fatalf("batchRejected %d → %d, want +1", before.BatchRejected, after.BatchRejected)
	}
	// Atomicity: neither seed-3 nor seed-4 left any trace.
	if after.BatchItemsEnqueued != 0 || after.Submitted != before.Submitted {
		t.Fatalf("partial admission leaked: %+v", after)
	}

	// A batch that needs only one new job still fits (seed 3 alone
	// would also not fit — the queue is full — so coalesce onto seed 2).
	code, _, v := postBatch(t, ts.URL, `{"items":[{"kernel":"fir","seed":2}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("coalescing batch: status %d, want 202", code)
	}
	if v.Coalesced != 1 || v.Items[0].Cache != "coalesced" {
		t.Fatalf("batch item did not coalesce: %+v", v)
	}
}
