package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"panorama/internal/core"
	"panorama/internal/failure"
)

// The acceptance criterion end to end, against the real pipeline:
// start the service in-process, submit the same kernel twice — the
// second response must be a cache hit served in under 1% of the
// first's wall time, with /statsz reporting exactly one hit.
func TestEndToEndCacheHit(t *testing.T) {
	srv, err := New(Options{Workers: 1, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// fir at scale 0.4 on the 8x8 preset takes a few hundred ms — slow
	// enough that a <1% cache hit is clearly distinguishable from a
	// recomputation, fast enough for the test suite.
	body := `{"kernel":"fir","scale":0.4,"arch":"8x8","mapper":"pan-spr","seed":1,"wait":true}`

	t0 := time.Now()
	code, first := postMap(t, ts.URL, body)
	firstWall := time.Since(t0)
	if code != http.StatusOK {
		t.Fatalf("first submission: status %d (%+v)", code, first)
	}
	if first.Result == nil || !first.Result.Success {
		t.Fatalf("first submission did not map: %+v", first)
	}
	if first.Cache != "" {
		t.Fatalf("first submission marked %q, want a computation", first.Cache)
	}

	t1 := time.Now()
	code, second := postMap(t, ts.URL, body)
	secondWall := time.Since(t1)
	if code != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("second submission: status %d cache %q, want 200/hit", code, second.Cache)
	}
	if second.Result == nil || second.Result.II != first.Result.II || second.Result.QoM != first.Result.QoM {
		t.Fatalf("cached result differs: %+v vs %+v", second.Result, first.Result)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatalf("fingerprint changed between identical submissions")
	}
	if firstWall < 50*time.Millisecond {
		t.Fatalf("first run finished in %v; workload too small to validate the <1%% criterion", firstWall)
	}
	if secondWall > firstWall/100 {
		t.Fatalf("cache hit took %v, more than 1%% of the first run's %v", secondWall, firstWall)
	}

	st := getStats(t, ts.URL)
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheHitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.CacheHitRate)
	}
	if st.ClusteringMS <= 0 || st.LowerMS <= 0 {
		t.Fatalf("per-stage wall times not accumulated: %+v", st)
	}

	// The result is addressable by fingerprint and by job id.
	resp, err := http.Get(ts.URL + "/v1/result/" + first.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/result/{fp}: status %d", resp.StatusCode)
	}
	var e Entry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Summary.II != first.Result.II {
		t.Fatalf("result endpoint served II=%d, want %d", e.Summary.II, first.Result.II)
	}
	jr, err := http.Get(ts.URL + "/v1/jobs/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/{id}: status %d", jr.StatusCode)
	}
}

func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	srv, err := New(Options{
		Workers:    1,
		QueueSize:  1,
		RetryAfter: 2 * time.Second,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			select {
			case <-release:
				return core.Summary{Kernel: "fake", Success: true, MII: 1, II: 1}, nil
			case <-ctx.Done():
				return core.Summary{}, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func(seed int) (int, JobView, http.Header) {
		resp, err := http.Post(ts.URL+"/v1/map", "application/json",
			jsonBody(fmt.Sprintf(`{"kernel":"fir","scale":0.25,"arch":"8x8","seed":%d}`, seed)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, v, resp.Header
	}

	// First job: admitted, eventually running.
	code, v1, _ := submit(1)
	if code != http.StatusAccepted {
		t.Fatalf("first submission: status %d, want 202", code)
	}
	waitForStatus(t, ts.URL, v1.ID, JobRunning)

	// Second job (distinct fingerprint): fills the queue.
	if code, _, _ = submit(2); code != http.StatusAccepted {
		t.Fatalf("second submission: status %d, want 202", code)
	}

	// Third: rejected with 429 and a Retry-After hint.
	code, _, hdr := submit(3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded submission: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want %q", hdr.Get("Retry-After"), "2")
	}
	if st := getStats(t, ts.URL); st.Rejected != 1 {
		t.Fatalf("stats rejected=%d, want 1", st.Rejected)
	}

	// A rejected job leaves no trace: once capacity frees up the same
	// request is admitted cleanly.
	close(release)
	waitForStatus(t, ts.URL, v1.ID, JobDone)
	if code, _, _ = submit(3); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("resubmission after drain: status %d", code)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	srv, err := New(Options{
		Workers:   1,
		QueueSize: 4,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			select {
			case <-release:
				return core.Summary{Kernel: "fake", Success: true, MII: 1, II: 2}, nil
			case <-ctx.Done():
				return core.Summary{}, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, v := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submission: status %d", code)
	}
	waitForStatus(t, ts.URL, v.ID, JobRunning)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// Draining: health reports it and new submissions bounce with 503.
	waitFor(t, func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	}, "healthz to report draining")
	if code, _ := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","seed":9}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: status %d, want 503", code)
	}

	// Releasing the in-flight job lets the drain finish cleanly — and
	// the drained job's result still lands in the cache.
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown returned %v, want nil", err)
	}
	if _, ok := srv.Cache().Get(v.Fingerprint); !ok {
		t.Fatal("drained job's result missing from the cache")
	}
	job, _ := srv.Job(v.ID)
	if job.Err() != nil {
		t.Fatalf("drained job failed: %v", job.Err())
	}
}

func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	srv, err := New(Options{
		Workers:   1,
		QueueSize: 4,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			<-ctx.Done() // a job that only ends by cancellation
			return core.Summary{}, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, v := postMap(t, ts.URL, `{"kernel":"fir","scale":0.25,"arch":"8x8","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submission: status %d", code)
	}
	waitForStatus(t, ts.URL, v.ID, JobRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil although the drain deadline fired")
	}
	job, _ := srv.Job(v.ID)
	if !failure.IsCancelled(job.Err()) {
		t.Fatalf("force-cancelled job error = %v, want a cancellation", job.Err())
	}
}

// Typed pipeline failures must surface as distinct HTTP status codes
// and distinct /statsz counters.
func TestTypedFailureStatusCodes(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		class  string
	}{
		{"budget", failure.Stage("clustering", fmt.Errorf("sweep: %w", failure.ErrBudget)), http.StatusGatewayTimeout, "budget"},
		{"infeasible", failure.Stage("clustermap", fmt.Errorf("no mapping: %w", failure.ErrInfeasible)), http.StatusUnprocessableEntity, "infeasible"},
		{"cancelled", failure.Stage("lower", fmt.Errorf("ctx: %w", failure.ErrCancelled)), StatusClientClosedRequest, "cancelled"},
		{"lower-failed", failure.Stage("lower", fmt.Errorf("%w: boom", failure.ErrLowerFailed)), http.StatusInternalServerError, "lower-failed"},
	}
	fail := make(map[int64]error, len(cases))
	for i, c := range cases {
		fail[int64(i+1)] = c.err
	}
	srv, err := New(Options{
		Workers:   1,
		QueueSize: 8,
		Run: func(ctx context.Context, job *Job) (core.Summary, error) {
			return core.Summary{}, fail[job.Seed]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i, c := range cases {
		body := fmt.Sprintf(`{"kernel":"fir","scale":0.25,"arch":"8x8","seed":%d,"wait":true}`, i+1)
		code, v := postMap(t, ts.URL, body)
		if code != c.status {
			t.Errorf("%s: status %d, want %d", c.name, code, c.status)
		}
		if v.Status != JobFailed || v.Error == nil || v.Error.Class != c.class {
			t.Errorf("%s: view %+v, want failed job with class %q", c.name, v, c.class)
		}
	}
	st := getStats(t, ts.URL)
	if st.FailedBudget != 1 || st.FailedInfeasib != 1 || st.FailedCancel != 1 || st.FailedOther != 1 {
		t.Fatalf("failure counters budget=%d infeasible=%d cancelled=%d other=%d, want 1 each",
			st.FailedBudget, st.FailedInfeasib, st.FailedCancel, st.FailedOther)
	}
	if st.Completed != 0 {
		t.Fatalf("completed=%d, want 0", st.Completed)
	}
}

func TestBadRequests(t *testing.T) {
	srv, err := New(Options{Workers: 1, Run: func(ctx context.Context, job *Job) (core.Summary, error) {
		return core.Summary{}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"no graph":       `{"arch":"8x8"}`,
		"both sources":   `{"kernel":"fir","dfg":{"name":"g","nodes":[],"edges":[]},"arch":"8x8"}`,
		"unknown kernel": `{"kernel":"nosuch"}`,
		"unknown arch":   `{"kernel":"fir","arch":"3x3"}`,
		"unknown mapper": `{"kernel":"fir","mapper":"magic"}`,
		"invalid dfg":    `{"dfg":{"name":"g","nodes":[{"id":0,"op":1}],"edges":[{"from":0,"to":5}]}}`,
		"unknown field":  `{"kernel":"fir","bogus":1}`,
		"malformed json": `{`,
	} {
		code, _ := postMap(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/result/feedface")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status %d, want 404", resp.StatusCode)
	}
}

func jsonBody(s string) io.Reader { return bytes.NewReader([]byte(s)) }

// waitForStatus polls the job endpoint until the wanted status.
func waitForStatus(t *testing.T, url, id string, want JobStatus) {
	t.Helper()
	waitFor(t, func() bool {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return false
		}
		return v.Status == want
	}, fmt.Sprintf("job %s to reach %q", id, want))
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
