package service

import (
	"math"
	"strconv"
	"sync"
	"time"
)

// drainWindow is how far back the estimator looks for completions.
const drainWindow = 30 * time.Second

// drainRing is the completion-timestamp ring capacity. 64 samples over
// a 30s window resolves drain rates down to ~2/s without unbounded
// memory.
const drainRing = 64

// drainEstimator observes job completion times and turns the current
// backlog into a Retry-After hint: "at the pace jobs have been
// finishing lately, how long until the backlog has drained?". It is a
// fixed-size ring of completion timestamps, so recording is O(1) and
// lock contention is negligible next to a mapping run.
type drainEstimator struct {
	window time.Duration
	now    func() time.Time // injectable clock for deterministic tests

	mu    sync.Mutex
	times [drainRing]time.Time
	idx   int
	n     int
}

func newDrainEstimator() *drainEstimator {
	return &drainEstimator{window: drainWindow, now: time.Now}
}

// record notes one job reaching a terminal state.
func (d *drainEstimator) record() {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.times[d.idx] = d.now()
	d.idx = (d.idx + 1) % drainRing
	if d.n < drainRing {
		d.n++
	}
	d.mu.Unlock()
}

// hint estimates how long a client should wait before retrying, given
// the current backlog (queued + running jobs). With no completions
// inside the window there is no observed rate, so the configured
// fallback is returned unchanged — deterministic for tests and honest
// at cold start. Otherwise the estimate is (backlog+1) jobs at the
// observed drain rate (the +1 being the caller's own job), rounded up
// to whole seconds and clamped to [1s, 60s] so a momentary stall never
// tells clients to go away for minutes.
//
// Stale samples are evicted by timestamp, and the drain rate is
// computed over the span the surviving samples actually cover (floored
// at 1s), not over the whole window. The old fixed-window denominator
// made an idle-then-burst server look ~window/span times slower than
// it was: after 25 idle seconds, 10 completions in the last 5 seconds
// were read as 10-per-30s instead of 10-per-5s, inflating Retry-After
// six-fold exactly when the server had just sped up (regression test:
// TestDrainEstimatorIdleThenBurst).
func (d *drainEstimator) hint(backlog int, fallback time.Duration) time.Duration {
	if d == nil {
		return fallback
	}
	now := d.now()
	d.mu.Lock()
	k := 0
	var oldest time.Time
	for i := 0; i < d.n; i++ {
		age := now.Sub(d.times[i])
		if age < 0 || age > d.window {
			continue // stale (or clock went backwards): evicted
		}
		if k == 0 || d.times[i].Before(oldest) {
			oldest = d.times[i]
		}
		k++
	}
	d.mu.Unlock()
	if k == 0 {
		return fallback
	}
	span := now.Sub(oldest)
	if span < time.Second {
		// A burst inside one second has no measurable span; treating it
		// as one second keeps the rate finite and conservative.
		span = time.Second
	}
	secs := float64(backlog+1) * span.Seconds() / float64(k)
	wait := time.Duration(math.Ceil(secs)) * time.Second
	if wait < time.Second {
		wait = time.Second
	}
	if wait > 60*time.Second {
		wait = 60 * time.Second
	}
	return wait
}

// retryAfterSeconds is the whole-second Retry-After value for 429/503
// responses: the drain estimate over the live backlog, falling back to
// Options.RetryAfter before any completion has been observed.
func (s *Server) retryAfterSeconds() int {
	backlog := len(s.queue) + int(s.running.Load())
	wait := s.drain.hint(backlog, s.opts.RetryAfter)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// strconv429 formats a Retry-After second count for the header.
func strconv429(secs int) string { return strconv.Itoa(secs) }
