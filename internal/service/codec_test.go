package service

import (
	"reflect"
	"testing"
	"time"

	"panorama/internal/core"
)

// fullEntry exercises every Summary field the codec carries, including
// the optional ones JSON would omit.
func fullEntry() Entry {
	return Entry{
		Fingerprint: "pan1:abcdef0123456789",
		Summary: core.Summary{
			Kernel:       "conv2d",
			Success:      true,
			MII:          3,
			II:           4,
			QoM:          0.75,
			Guidance:     "guided",
			Candidates:   5,
			PartitionK:   4,
			ClusteringMS: 12.5,
			ClusterMapMS: 3.25,
			LowerMS:      840.125,
			TotalMS:      855.875,
			Stages: []core.StageRecord{
				{Stage: "clustering", Wall: 12500 * time.Microsecond},
				{Stage: "clustermap", Wall: 3250 * time.Microsecond, Note: "ilp"},
				{Stage: "lower", Wall: 840125 * time.Microsecond, Note: "budgeted: best-so-far"},
			},
			BudgetStage: "lower",
		},
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	for name, e := range map[string]Entry{
		"full":    fullEntry(),
		"minimal": {Fingerprint: "pan1:00", Summary: core.Summary{Kernel: "fir", MII: 2, Guidance: "fallback"}},
		"empty":   {},
	} {
		data, err := e.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Entry
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(e, back) {
			t.Fatalf("%s: round trip changed the entry:\n got %+v\nwant %+v", name, back, e)
		}
	}
}

// Every strict prefix of a valid encoding must fail to decode (and
// must not panic): the codec detects truncation anywhere.
func TestEntryCodecRejectsTruncation(t *testing.T) {
	e := fullEntry()
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		var back Entry
		if err := back.UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(data))
		}
	}
	// Trailing garbage must be rejected too.
	var back Entry
	if err := back.UnmarshalBinary(append(append([]byte{}, data...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

func TestEntryCodecRejectsBadHeader(t *testing.T) {
	e := fullEntry()
	data, _ := e.MarshalBinary()
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	var back Entry
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte{}, data...)
	bad[4] = 99
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// A decode failure must not leave partial state behind in the
// receiver.
func TestEntryCodecFailureLeavesReceiverUntouched(t *testing.T) {
	back := fullEntry()
	if err := back.UnmarshalBinary([]byte("PCEN\x01bogus")); err == nil {
		t.Fatal("bogus payload accepted")
	}
	if !reflect.DeepEqual(back, fullEntry()) {
		t.Fatal("failed decode mutated the receiver")
	}
}
