// Package config lowers a compiled mapping into the per-PE
// configuration streams the CGRA's configuration memory would hold —
// the "predetermined sequence of configurations" of the paper's §1 that
// the fabric cycles through every II cycles.
//
// Each PE gets II configuration words. A word selects the FU opcode
// executed in that slot (if any), the source of each FU operand (a
// local wire, the local result register, or an RF read), the values
// driven onto each outgoing wire, and the RF write. The generator
// derives all of it from the mapping's routes, and Words are
// serialisable, so the output is effectively the bitstream of this
// CGRA model.
package config

import (
	"fmt"
	"sort"

	"panorama/internal/arch"
	"panorama/internal/dfg"
	"panorama/internal/mrrg"
	"panorama/internal/spr"
)

// SourceKind says where a routed value enters a resource from.
type SourceKind uint8

// Operand / wire source kinds.
const (
	SrcNone   SourceKind = iota
	SrcWire              // an incoming wire (Link names the driving PE)
	SrcResult            // this PE's result register
	SrcRF                // a register-file read
)

func (k SourceKind) String() string {
	switch k {
	case SrcNone:
		return "none"
	case SrcWire:
		return "wire"
	case SrcResult:
		return "res"
	case SrcRF:
		return "rf"
	}
	return fmt.Sprintf("src(%d)", uint8(k))
}

// Source selects one input of a mux.
type Source struct {
	Kind SourceKind
	From int // SrcWire: driving PE id; SrcRF: register index; else unused
}

// WireDrive configures one outgoing wire of a PE in one slot.
type WireDrive struct {
	To  int // receiving PE (== own PE for the bypass wire)
	Src Source
}

// RFWrite configures a register-file write in one slot.
type RFWrite struct {
	Reg int
	Src Source
}

// Word is one PE's configuration for one modulo slot.
type Word struct {
	Op       dfg.Op   // OpNop when the FU idles
	Node     int      // DFG node executed (-1 when idle)
	Operands []Source // FU operand sources, DFG edge order
	Wires    []WireDrive
	Writes   []RFWrite
}

// Program is the whole fabric's configuration: Words[pe][slot].
type Program struct {
	II    int
	Words [][]Word
}

// Generate lowers a validated mapping to configuration words.
func Generate(d *dfg.Graph, a *arch.CGRA, m *spr.Mapping) (*Program, error) {
	if err := spr.Validate(d, a, m, nil); err != nil {
		return nil, fmt.Errorf("config: refusing invalid mapping: %w", err)
	}
	g, err := mrrg.New(a, m.II)
	if err != nil {
		return nil, err
	}
	p := &Program{II: m.II, Words: make([][]Word, a.NumPEs())}
	for pe := range p.Words {
		p.Words[pe] = make([]Word, m.II)
		for s := range p.Words[pe] {
			p.Words[pe][s] = Word{Op: dfg.OpNop, Node: -1}
		}
	}

	// FU ops.
	for v := range d.Nodes {
		pe, slot := m.PlacePE[v], m.PlaceT[v]%m.II
		w := &p.Words[pe][slot]
		w.Op = d.Nodes[v].Op
		w.Node = v
	}

	// Routes: walk each edge's path and translate hops into wire
	// drives, RF writes, and FU operand sources.
	inEdges := make([][]int, d.NumNodes())
	for i, e := range d.Edges {
		inEdges[e.To] = append(inEdges[e.To], i)
	}
	for v := range d.Nodes {
		pe, slot := m.PlacePE[v], m.PlaceT[v]%m.II
		w := &p.Words[pe][slot]
		w.Operands = make([]Source, len(inEdges[v]))
		for oi, ei := range inEdges[v] {
			src, err := lowerRoute(g, a, p, m.Routes[ei])
			if err != nil {
				return nil, fmt.Errorf("config: edge %d: %w", ei, err)
			}
			w.Operands[oi] = src
		}
	}
	for pe := range p.Words {
		for s := range p.Words[pe] {
			word := &p.Words[pe][s]
			sort.Slice(word.Wires, func(i, j int) bool { return word.Wires[i].To < word.Wires[j].To })
			sort.Slice(word.Writes, func(i, j int) bool { return word.Writes[i].Reg < word.Writes[j].Reg })
		}
	}
	return p, nil
}

// lowerRoute translates one route into configuration entries and
// returns the FU operand source at the consumer end.
func lowerRoute(g *mrrg.Graph, a *arch.CGRA, p *Program, route []int32) (Source, error) {
	// cur is the source feeding the next hop, as seen by the PE that
	// consumes it.
	var cur Source
	if len(route) == 0 {
		return cur, fmt.Errorf("empty route")
	}
	if g.Kinds[route[0]] != mrrg.KindRes {
		return cur, fmt.Errorf("route starts at %s, want a result register", g.Describe(int(route[0])))
	}
	cur = Source{Kind: SrcResult}

	for i := 0; i+1 < len(route); i++ {
		from, to := route[i], route[i+1]
		slot := int(g.TimeOf[from])
		pe := int(g.PEOf[from])
		switch g.Kinds[to] {
		case mrrg.KindLink:
			// Drive a wire: configured in the driving PE's word at the
			// wire's slot.
			li := linkIndexOf(g, to)
			fromPE, toPE := g.LinkEnds(li)
			word := &p.Words[fromPE][int(g.TimeOf[to])]
			word.Wires = appendWire(word.Wires, WireDrive{To: toPE, Src: cur})
			// Downstream, the value is seen as arriving on a wire from
			// fromPE.
			cur = Source{Kind: SrcWire, From: fromPE}
		case mrrg.KindWPort:
			// The write itself is recorded when the REG node follows.
		case mrrg.KindReg:
			word := &p.Words[int(g.PEOf[to])][slot]
			word.Writes = appendWrite(word.Writes, RFWrite{Reg: int(g.RegOf[to]), Src: cur})
			cur = Source{Kind: SrcRF, From: int(g.RegOf[to])}
		case mrrg.KindRPort:
			// Reading through the port keeps the RF source.
		case mrrg.KindFU:
			// Final consume: cur is the operand source.
			return cur, nil
		case mrrg.KindRes:
			return cur, fmt.Errorf("route passes through a result register at %s", g.Describe(int(to)))
		}
		_ = pe
	}
	return cur, fmt.Errorf("route does not end at an FU")
}

// appendWire deduplicates identical drives (fan-out of one value over
// the same wire configuration).
func appendWire(ws []WireDrive, w WireDrive) []WireDrive {
	for _, x := range ws {
		if x == w {
			return ws
		}
	}
	return append(ws, w)
}

func appendWrite(ws []RFWrite, w RFWrite) []RFWrite {
	for _, x := range ws {
		if x == w {
			return ws
		}
	}
	return append(ws, w)
}

// linkIndexOf recovers the wire index of a KindLink node.
func linkIndexOf(g *mrrg.Graph, node int32) int {
	// LinkNode(li, t) layout: linkBase + li*II + t.
	for li := 0; li < g.NumLinks(); li++ {
		if g.LinkNode(li, int(g.TimeOf[node])) == int(node) {
			return li
		}
	}
	return -1
}

// Stats summarises a program for reports.
type Stats struct {
	ActiveFUSlots int // FU slots executing an operation
	TotalFUSlots  int
	WireDrives    int
	RFWrites      int
}

// ComputeStats tallies configuration activity.
func (p *Program) ComputeStats() Stats {
	var s Stats
	for pe := range p.Words {
		for slot := range p.Words[pe] {
			w := &p.Words[pe][slot]
			s.TotalFUSlots++
			if w.Node >= 0 {
				s.ActiveFUSlots++
			}
			s.WireDrives += len(w.Wires)
			s.RFWrites += len(w.Writes)
		}
	}
	return s
}

// Utilisation returns the fraction of FU slots doing useful work.
func (p *Program) Utilisation() float64 {
	s := p.ComputeStats()
	if s.TotalFUSlots == 0 {
		return 0
	}
	return float64(s.ActiveFUSlots) / float64(s.TotalFUSlots)
}
