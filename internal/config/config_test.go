package config

import (
	"testing"

	"panorama/internal/arch"
	"panorama/internal/dfg"
	"panorama/internal/kernels"
	"panorama/internal/spr"
)

func mapped(t *testing.T, g *dfg.Graph, a *arch.CGRA) *spr.Mapping {
	t.Helper()
	res, err := spr.Map(g, a, spr.Options{Seed: 1})
	if err != nil || !res.Success {
		t.Fatalf("map failed: %v", err)
	}
	return res.Mapping
}

func smallDFG() *dfg.Graph {
	g := dfg.New("t")
	ld := g.AddNode(dfg.OpLoad, "")
	ml := g.AddNode(dfg.OpMul, "")
	ad := g.AddNode(dfg.OpAdd, "")
	st := g.AddNode(dfg.OpStore, "")
	g.AddEdge(ld, ml)
	g.AddEdge(ld, ad)
	g.AddEdge(ml, ad)
	g.AddEdge(ad, st)
	g.MustFreeze()
	return g
}

func TestGenerateShape(t *testing.T) {
	g := smallDFG()
	a := arch.Preset4x4()
	m := mapped(t, g, a)
	p, err := Generate(g, a, m)
	if err != nil {
		t.Fatal(err)
	}
	if p.II != m.II {
		t.Fatalf("II mismatch: %d vs %d", p.II, m.II)
	}
	if len(p.Words) != a.NumPEs() {
		t.Fatalf("words for %d PEs, want %d", len(p.Words), a.NumPEs())
	}
	for pe := range p.Words {
		if len(p.Words[pe]) != m.II {
			t.Fatalf("PE %d has %d slots, want %d", pe, len(p.Words[pe]), m.II)
		}
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	g := smallDFG()
	a := arch.Preset4x4()
	m := mapped(t, g, a)
	bad := *m
	bad.PlacePE = append([]int(nil), m.PlacePE...)
	bad.PlacePE[0] = -1
	if _, err := Generate(g, a, &bad); err == nil {
		t.Fatal("Generate accepted an invalid mapping")
	}
}

func TestEveryOpConfigured(t *testing.T) {
	g := smallDFG()
	a := arch.Preset4x4()
	m := mapped(t, g, a)
	p, err := Generate(g, a, m)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for pe := range p.Words {
		for _, w := range p.Words[pe] {
			if w.Node >= 0 {
				if seen[w.Node] {
					t.Fatalf("node %d configured twice", w.Node)
				}
				seen[w.Node] = true
				if w.Op != g.Nodes[w.Node].Op {
					t.Fatalf("node %d has op %v, want %v", w.Node, w.Op, g.Nodes[w.Node].Op)
				}
			}
		}
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("configured %d of %d nodes", len(seen), g.NumNodes())
	}
}

func TestOperandsHaveSources(t *testing.T) {
	g := smallDFG()
	a := arch.Preset4x4()
	m := mapped(t, g, a)
	p, err := Generate(g, a, m)
	if err != nil {
		t.Fatal(err)
	}
	for pe := range p.Words {
		for _, w := range p.Words[pe] {
			if w.Node < 0 {
				continue
			}
			wantOperands := g.InDeg(w.Node)
			if len(w.Operands) != wantOperands {
				t.Fatalf("node %d has %d operand sources, want %d", w.Node, len(w.Operands), wantOperands)
			}
			for _, src := range w.Operands {
				if src.Kind == SrcNone {
					t.Fatalf("node %d has an unconfigured operand", w.Node)
				}
			}
		}
	}
}

func TestStatsAndUtilisation(t *testing.T) {
	g := smallDFG()
	a := arch.Preset4x4()
	m := mapped(t, g, a)
	p, err := Generate(g, a, m)
	if err != nil {
		t.Fatal(err)
	}
	s := p.ComputeStats()
	if s.ActiveFUSlots != g.NumNodes() {
		t.Fatalf("active slots %d, want %d", s.ActiveFUSlots, g.NumNodes())
	}
	if s.TotalFUSlots != a.NumPEs()*m.II {
		t.Fatalf("total slots %d", s.TotalFUSlots)
	}
	u := p.Utilisation()
	if u <= 0 || u > 1 {
		t.Fatalf("utilisation %v", u)
	}
}

func TestKernelProgramGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel config in -short mode")
	}
	spec, err := kernels.ByName("fir")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(0.2)
	a := arch.Preset8x8()
	m := mapped(t, g, a)
	p, err := Generate(g, a, m)
	if err != nil {
		t.Fatal(err)
	}
	s := p.ComputeStats()
	if s.WireDrives == 0 {
		t.Fatal("no wire drives configured for a multi-PE kernel")
	}
	if s.ActiveFUSlots != g.NumNodes() {
		t.Fatalf("active %d != nodes %d", s.ActiveFUSlots, g.NumNodes())
	}
}

func TestSourceKindString(t *testing.T) {
	if SrcWire.String() != "wire" || SrcRF.String() != "rf" || SrcResult.String() != "res" || SrcNone.String() != "none" {
		t.Fatal("source kind strings wrong")
	}
	if SourceKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
