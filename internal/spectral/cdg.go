package spectral

import "panorama/internal/dfg"

// CDG is the Cluster Dependency Graph (paper §3): one node per DFG
// cluster; edge weights count the DFG dependencies between two
// clusters.
type CDG struct {
	K        int
	Sizes    []int // DFG nodes per cluster
	MemSizes []int // memory operations (loads/stores) per cluster

	// Weight[i][j] is the number of directed DFG edges from cluster i
	// to cluster j (i != j). Undirected weight is Weight[i][j]+Weight[j][i].
	Weight [][]int

	// Members lists the DFG node ids of each cluster, ascending.
	Members [][]int
}

// BuildCDG condenses the DFG under a partition.
func BuildCDG(g *dfg.Graph, p *Partition) *CDG {
	k := p.K
	c := &CDG{
		K:        k,
		Sizes:    append([]int(nil), p.Sizes...),
		MemSizes: make([]int, k),
		Weight:   make([][]int, k),
		Members:  make([][]int, k),
	}
	for i := range c.Weight {
		c.Weight[i] = make([]int, k)
	}
	for v, cl := range p.Assign {
		c.Members[cl] = append(c.Members[cl], v)
		if g.Nodes[v].Op.IsMem() {
			c.MemSizes[cl]++
		}
	}
	for _, e := range g.Edges {
		a, b := p.Assign[e.From], p.Assign[e.To]
		if a != b {
			c.Weight[a][b]++
		}
	}
	return c
}

// UndirectedWeight returns the total DFG edge count between clusters i
// and j regardless of direction.
func (c *CDG) UndirectedWeight(i, j int) int {
	return c.Weight[i][j] + c.Weight[j][i]
}

// TotalNodes returns the DFG node count.
func (c *CDG) TotalNodes() int {
	t := 0
	for _, s := range c.Sizes {
		t += s
	}
	return t
}

// TotalMem returns the memory-operation count; 0 when the CDG was built
// without memory information.
func (c *CDG) TotalMem() int {
	t := 0
	for _, s := range c.MemSizes {
		t += s
	}
	return t
}

// MemSize returns the memory-operation count of cluster v, tolerating
// CDGs built without memory information.
func (c *CDG) MemSize(v int) int {
	if c.MemSizes == nil {
		return 0
	}
	return c.MemSizes[v]
}

// Neighbors returns the clusters adjacent to i (non-zero undirected
// weight).
func (c *CDG) Neighbors(i int) []int {
	var out []int
	for j := 0; j < c.K; j++ {
		if j != i && c.UndirectedWeight(i, j) > 0 {
			out = append(out, j)
		}
	}
	return out
}

// Degree returns the number of clusters adjacent to i.
func (c *CDG) Degree(i int) int { return len(c.Neighbors(i)) }

// InterEdges returns the total number of inter-cluster DFG edges.
func (c *CDG) InterEdges() int {
	t := 0
	for i := 0; i < c.K; i++ {
		for j := 0; j < c.K; j++ {
			t += c.Weight[i][j]
		}
	}
	return t
}
