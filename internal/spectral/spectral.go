// Package spectral implements the DFG clustering stage of Panorama
// (paper §3.1): spectral clustering of the loop-body DFG, the cluster
// sweep over candidate k values, the size imbalance factor used to pick
// balanced partitions, and construction of the Cluster Dependency Graph
// (CDG) consumed by the cluster mapping stage.
package spectral

import (
	"context"
	"fmt"
	"math"
	"sort"

	"panorama/internal/dfg"
	"panorama/internal/faultinject"
	"panorama/internal/kmeans"
	"panorama/internal/linalg"
	"panorama/internal/pool"
)

// Partition is one clustering solution of a DFG.
type Partition struct {
	K      int   // number of clusters
	Assign []int // DFG node -> cluster id (0..K-1)
	Sizes  []int // nodes per cluster

	InterE  int     // DFG edges crossing clusters
	IntraE  int     // DFG edges within clusters
	SizeSTD float64 // standard deviation of cluster sizes
	IF      float64 // imbalance factor: (max-min)/|V|
}

// Embedder caches the spectral embedding of one DFG so that a sweep
// over many k values pays for the eigendecomposition only once.
type Embedder struct {
	g     *dfg.Graph
	eigen *linalg.EigenResult
}

// NewEmbedder computes the Laplacian eigendecomposition of the DFG's
// undirected similarity graph (L = D - A, parallel edges merged with
// weight equal to their multiplicity).
func NewEmbedder(g *dfg.Graph) (*Embedder, error) {
	if err := faultinject.Fire(faultinject.SiteEigensolve); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("spectral: empty graph")
	}
	lap := Laplacian(g)
	eig, err := linalg.SymmetricEigen(lap)
	if err != nil {
		return nil, fmt.Errorf("spectral: %w", err)
	}
	return &Embedder{g: g, eigen: eig}, nil
}

// Laplacian returns the unnormalised graph Laplacian L = D - A of the
// DFG's undirected similarity graph. Multi-edges between the same node
// pair contribute their multiplicity to the adjacency weight.
func Laplacian(g *dfg.Graph) *linalg.Matrix {
	n := g.NumNodes()
	lap := linalg.NewMatrix(n, n)
	for _, e := range g.Edges {
		if e.From == e.To {
			continue
		}
		lap.Add(e.From, e.To, -1)
		lap.Add(e.To, e.From, -1)
		lap.Add(e.From, e.From, 1)
		lap.Add(e.To, e.To, 1)
	}
	return lap
}

// Cluster runs k-means on the first k eigenvector coordinates of every
// node and returns the resulting partition with its statistics.
func (em *Embedder) Cluster(k int, seed int64) (*Partition, error) {
	if err := faultinject.Fire(faultinject.SiteKMeans); err != nil {
		return nil, err
	}
	n := em.g.NumNodes()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("spectral: k=%d out of range for %d nodes", k, n)
	}
	pts := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, k)
		for j := 0; j < k; j++ {
			row[j] = em.eigen.Vectors.At(i, j)
		}
		pts[i] = row
	}
	res, err := kmeans.Cluster(pts, k, kmeans.Options{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("spectral: %w", err)
	}
	return newPartition(em.g, k, res.Assign), nil
}

// newPartition normalises cluster ids to be dense in [0,K) ordered by
// first appearance, then fills in statistics.
func newPartition(g *dfg.Graph, k int, rawAssign []int) *Partition {
	remap := make(map[int]int)
	assign := make([]int, len(rawAssign))
	for i, c := range rawAssign {
		id, ok := remap[c]
		if !ok {
			id = len(remap)
			remap[c] = id
		}
		assign[i] = id
	}
	k = len(remap)
	p := &Partition{K: k, Assign: assign, Sizes: make([]int, k)}
	for _, c := range assign {
		p.Sizes[c]++
	}
	for _, e := range g.Edges {
		if assign[e.From] == assign[e.To] {
			p.IntraE++
		} else {
			p.InterE++
		}
	}
	p.SizeSTD = stddev(p.Sizes)
	p.IF = imbalance(p.Sizes, len(assign))
	return p
}

func stddev(sizes []int) float64 {
	if len(sizes) == 0 {
		return 0
	}
	mean := 0.0
	for _, s := range sizes {
		mean += float64(s)
	}
	mean /= float64(len(sizes))
	varsum := 0.0
	for _, s := range sizes {
		d := float64(s) - mean
		varsum += d * d
	}
	return math.Sqrt(varsum / float64(len(sizes)))
}

// imbalance returns the paper's imbalance factor: the difference
// between the largest and smallest cluster size relative to the total
// node count.
func imbalance(sizes []int, total int) float64 {
	if len(sizes) == 0 || total == 0 {
		return 0
	}
	min, max := sizes[0], sizes[0]
	for _, s := range sizes[1:] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return float64(max-min) / float64(total)
}

// Sweep clusters the DFG for every k in [kMin, kMax] (clamped to the
// node count) and returns the partitions in ascending k order. This is
// lines 1-4 of the paper's Algorithm 1. It runs the k-means stage on
// every available CPU; use SweepCtx for explicit worker and
// cancellation control.
func Sweep(g *dfg.Graph, kMin, kMax int, seed int64) ([]*Partition, error) {
	parts, _, err := SweepCtx(context.Background(), g, kMin, kMax, seed, 0)
	return parts, err
}

// SweepCtx is Sweep with cancellation, a bounded worker pool
// (workers <= 0 means one per CPU), and the pool statistics of the
// fan-out. The Laplacian eigendecomposition — the sweep's shared
// prefix — is computed exactly once; only the per-k k-means stage fans
// out. Each k clusters with the seed seed+k, exactly as the serial
// loop always has, so the result is bit-identical at any worker count:
// the output slice is ordered by k and each entry depends only on
// (embedding, k, seed).
func SweepCtx(ctx context.Context, g *dfg.Graph, kMin, kMax int, seed int64, workers int) ([]*Partition, pool.Stats, error) {
	if kMin < 1 {
		kMin = 1
	}
	if kMax > g.NumNodes() {
		kMax = g.NumNodes()
	}
	if kMin > kMax {
		return nil, pool.Stats{}, fmt.Errorf("spectral: empty sweep range [%d,%d]", kMin, kMax)
	}
	em, err := NewEmbedder(g)
	if err != nil {
		return nil, pool.Stats{}, err
	}
	parts := make([]*Partition, kMax-kMin+1)
	stats, err := pool.Run(ctx, workers, len(parts), func(i int) error {
		k := kMin + i
		p, err := em.Cluster(k, seed+int64(k))
		if err != nil {
			return err
		}
		parts[i] = p
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return parts, stats, nil
}

// TopBalanced returns the n partitions with the lowest imbalance factor
// (ties broken by fewer inter-cluster edges, then by smaller k). This
// is the paper's Top3BalancedPartitions with n = 3.
func TopBalanced(parts []*Partition, n int) []*Partition {
	sorted := make([]*Partition, len(parts))
	copy(sorted, parts)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.IF != b.IF {
			return a.IF < b.IF
		}
		if a.InterE != b.InterE {
			return a.InterE < b.InterE
		}
		return a.K < b.K
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
