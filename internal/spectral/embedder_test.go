package spectral

import (
	"math"
	"testing"

	"panorama/internal/dfg"
)

func TestEmbedderRejectsEmptyGraph(t *testing.T) {
	if _, err := NewEmbedder(dfg.New("empty")); err == nil {
		t.Fatal("accepted empty graph")
	}
}

// The second eigenvector of a path graph's Laplacian (the Fiedler
// vector) is monotone along the path — a classic spectral property that
// pins down the eigensolver + Laplacian pipeline.
func TestFiedlerVectorMonotoneOnPath(t *testing.T) {
	g := dfg.New("path")
	n := 12
	for i := 0; i < n; i++ {
		g.AddNode(dfg.OpAdd, "")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	g.MustFreeze()
	em, err := NewEmbedder(g)
	if err != nil {
		t.Fatal(err)
	}
	// First eigenvalue ~0 (connected graph), second > 0.
	if math.Abs(em.eigen.Values[0]) > 1e-8 {
		t.Fatalf("lambda0 = %v, want ~0", em.eigen.Values[0])
	}
	if em.eigen.Values[1] < 1e-8 {
		t.Fatalf("lambda1 = %v, want > 0", em.eigen.Values[1])
	}
	fiedler := em.eigen.Vectors.Col(1)
	increasing, decreasing := true, true
	for i := 1; i < n; i++ {
		if fiedler[i] < fiedler[i-1] {
			increasing = false
		}
		if fiedler[i] > fiedler[i-1] {
			decreasing = false
		}
	}
	if !increasing && !decreasing {
		t.Fatalf("Fiedler vector not monotone on a path: %v", fiedler)
	}
}

func TestDisconnectedGraphZeroEigenvalues(t *testing.T) {
	g := dfg.New("two-islands")
	for i := 0; i < 6; i++ {
		g.AddNode(dfg.OpAdd, "")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.MustFreeze()
	em, err := NewEmbedder(g)
	if err != nil {
		t.Fatal(err)
	}
	// Two connected components -> two ~zero eigenvalues.
	if math.Abs(em.eigen.Values[0]) > 1e-8 || math.Abs(em.eigen.Values[1]) > 1e-8 {
		t.Fatalf("expected two zero eigenvalues, got %v", em.eigen.Values[:3])
	}
	if em.eigen.Values[2] < 1e-8 {
		t.Fatalf("third eigenvalue should be positive: %v", em.eigen.Values[2])
	}
	// k=2 clustering must split exactly along the components.
	p, err := em.Cluster(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.InterE != 0 {
		t.Fatalf("component split cut %d edges", p.InterE)
	}
}
