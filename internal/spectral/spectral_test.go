package spectral

import (
	"context"
	"math"
	"testing"

	"panorama/internal/dfg"
)

// twoCommunities builds a graph with two dense communities of size sz
// joined by a single bridge edge.
func twoCommunities(sz int) *dfg.Graph {
	g := dfg.New("two")
	for i := 0; i < 2*sz; i++ {
		g.AddNode(dfg.OpAdd, "")
	}
	// Community A: 0..sz-1 as a dense DAG; community B likewise.
	for base := 0; base <= sz; base += sz {
		for i := 0; i < sz; i++ {
			for j := i + 1; j < sz && j <= i+3; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	g.AddEdge(sz-1, sz) // bridge
	g.MustFreeze()
	return g
}

func TestLaplacianRowSumsZero(t *testing.T) {
	g := twoCommunities(6)
	lap := Laplacian(g)
	for i := 0; i < lap.Rows; i++ {
		s := 0.0
		for j := 0; j < lap.Cols; j++ {
			s += lap.At(i, j)
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	if !lap.IsSymmetric(1e-12) {
		t.Fatal("Laplacian not symmetric")
	}
}

func TestLaplacianCountsMultiEdges(t *testing.T) {
	g := dfg.New("m")
	a := g.AddNode(dfg.OpAdd, "")
	b := g.AddNode(dfg.OpAdd, "")
	g.AddEdge(a, b)
	g.AddEdgeDist(a, b, 1)
	g.MustFreeze()
	lap := Laplacian(g)
	if lap.At(0, 1) != -2 || lap.At(0, 0) != 2 {
		t.Fatalf("multi-edge weight wrong: off=%v diag=%v", lap.At(0, 1), lap.At(0, 0))
	}
}

func TestClusterSeparatesCommunities(t *testing.T) {
	g := twoCommunities(8)
	em, err := NewEmbedder(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := em.Cluster(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With one bridge edge, spectral clustering must cut exactly it.
	if p.InterE != 1 {
		t.Fatalf("InterE = %d, want 1 (assign=%v)", p.InterE, p.Assign)
	}
	if p.Sizes[0] != 8 || p.Sizes[1] != 8 {
		t.Fatalf("sizes = %v, want [8 8]", p.Sizes)
	}
	if p.IF != 0 {
		t.Fatalf("IF = %v, want 0", p.IF)
	}
}

func TestClusterKOutOfRange(t *testing.T) {
	g := twoCommunities(3)
	em, err := NewEmbedder(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.Cluster(0, 1); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := em.Cluster(g.NumNodes()+1, 1); err == nil {
		t.Fatal("accepted k>n")
	}
}

func TestPartitionStats(t *testing.T) {
	g := dfg.New("s")
	for i := 0; i < 4; i++ {
		g.AddNode(dfg.OpAdd, "")
	}
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(1, 2)
	g.MustFreeze()
	p := newPartition(g, 2, []int{0, 0, 1, 1})
	if p.IntraE != 2 || p.InterE != 1 {
		t.Fatalf("intra=%d inter=%d", p.IntraE, p.InterE)
	}
	if p.SizeSTD != 0 || p.IF != 0 {
		t.Fatalf("std=%v if=%v", p.SizeSTD, p.IF)
	}
}

func TestPartitionNormalisesIDs(t *testing.T) {
	g := dfg.New("s")
	for i := 0; i < 3; i++ {
		g.AddNode(dfg.OpAdd, "")
	}
	g.MustFreeze()
	p := newPartition(g, 3, []int{7, 7, 2}) // sparse raw ids
	if p.K != 2 {
		t.Fatalf("K = %d, want 2", p.K)
	}
	if p.Assign[0] != 0 || p.Assign[1] != 0 || p.Assign[2] != 1 {
		t.Fatalf("assign = %v", p.Assign)
	}
}

func TestImbalanceFactor(t *testing.T) {
	if got := imbalance([]int{5, 5, 10}, 20); got != 0.25 {
		t.Fatalf("IF = %v, want 0.25", got)
	}
	if got := imbalance(nil, 0); got != 0 {
		t.Fatalf("IF of empty = %v", got)
	}
}

func TestSweepRangeAndOrder(t *testing.T) {
	g := twoCommunities(6)
	parts, err := Sweep(g, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("sweep returned %d partitions, want 4", len(parts))
	}
	for i, p := range parts {
		// K may collapse below the requested k if k-means merges, but
		// never exceeds it.
		if p.K > 2+i {
			t.Fatalf("partition %d has K=%d > requested %d", i, p.K, 2+i)
		}
	}
}

func TestSweepEmptyRange(t *testing.T) {
	g := twoCommunities(3)
	if _, err := Sweep(g, 5, 4, 1); err == nil {
		t.Fatal("accepted empty range")
	}
}

func TestTopBalancedOrdering(t *testing.T) {
	parts := []*Partition{
		{K: 4, IF: 0.3, InterE: 5},
		{K: 5, IF: 0.1, InterE: 9},
		{K: 6, IF: 0.1, InterE: 2},
		{K: 7, IF: 0.2, InterE: 1},
	}
	top := TopBalanced(parts, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].K != 6 || top[1].K != 5 || top[2].K != 7 {
		t.Fatalf("order = %d,%d,%d", top[0].K, top[1].K, top[2].K)
	}
	// n larger than input is clamped.
	if got := TopBalanced(parts, 10); len(got) != 4 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestBuildCDG(t *testing.T) {
	g := dfg.New("c")
	for i := 0; i < 5; i++ {
		g.AddNode(dfg.OpAdd, "")
	}
	g.AddEdge(0, 1) // intra cluster 0
	g.AddEdge(1, 2) // 0 -> 1
	g.AddEdge(1, 3) // 0 -> 1
	g.AddEdge(3, 4) // 1 -> 2 ... wait node4 cluster
	g.MustFreeze()
	p := newPartition(g, 3, []int{0, 0, 1, 1, 2})
	cdg := BuildCDG(g, p)
	if cdg.K != 3 {
		t.Fatalf("K = %d", cdg.K)
	}
	if cdg.Weight[0][1] != 2 {
		t.Fatalf("Weight[0][1] = %d, want 2", cdg.Weight[0][1])
	}
	if cdg.Weight[1][2] != 1 {
		t.Fatalf("Weight[1][2] = %d, want 1", cdg.Weight[1][2])
	}
	if cdg.UndirectedWeight(1, 0) != 2 {
		t.Fatalf("UndirectedWeight(1,0) = %d", cdg.UndirectedWeight(1, 0))
	}
	if cdg.TotalNodes() != 5 {
		t.Fatalf("TotalNodes = %d", cdg.TotalNodes())
	}
	if cdg.InterEdges() != 3 {
		t.Fatalf("InterEdges = %d, want 3", cdg.InterEdges())
	}
	if d := cdg.Degree(1); d != 2 {
		t.Fatalf("Degree(1) = %d, want 2", d)
	}
	if len(cdg.Members[0]) != 2 || cdg.Members[0][0] != 0 {
		t.Fatalf("Members[0] = %v", cdg.Members[0])
	}
}

func TestCDGConsistentWithPartitionStats(t *testing.T) {
	g := twoCommunities(8)
	em, err := NewEmbedder(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := em.Cluster(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	cdg := BuildCDG(g, p)
	if cdg.InterEdges() != p.InterE {
		t.Fatalf("CDG InterEdges %d != partition InterE %d", cdg.InterEdges(), p.InterE)
	}
	total := 0
	for _, m := range cdg.Members {
		total += len(m)
	}
	if total != g.NumNodes() {
		t.Fatalf("members cover %d of %d nodes", total, g.NumNodes())
	}
}

func TestSweepCtxParallelMatchesSerial(t *testing.T) {
	g := twoCommunities(8)
	serial, _, err := SweepCtx(context.Background(), g, 2, 6, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, stats, err := SweepCtx(context.Background(), g, 2, 6, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.K != p.K || s.InterE != p.InterE || s.IntraE != p.IntraE || s.IF != p.IF {
			t.Fatalf("partition %d stats differ: %+v vs %+v", i, s, p)
		}
		for v := range s.Assign {
			if s.Assign[v] != p.Assign[v] {
				t.Fatalf("partition %d: node %d assigned %d serially, %d in parallel",
					i, v, s.Assign[v], p.Assign[v])
			}
		}
	}
	if stats.Tasks != len(serial) {
		t.Fatalf("pool ran %d tasks, want %d", stats.Tasks, len(serial))
	}
}

func TestSweepCtxCancelled(t *testing.T) {
	g := twoCommunities(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SweepCtx(ctx, g, 2, 5, 1, 2); err == nil {
		t.Fatal("cancelled sweep must fail")
	}
}

func TestSweepDeterministic(t *testing.T) {
	g := twoCommunities(7)
	a, err := Sweep(g, 2, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(g, 2, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for v := range a[i].Assign {
			if a[i].Assign[v] != b[i].Assign[v] {
				t.Fatal("sweep not deterministic for equal seeds")
			}
		}
	}
}
