// Benchmarks that regenerate every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index). Each
// benchmark runs the corresponding harness once per iteration on the
// quick configuration and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation at the scaled-down size. Use `cmd/experiments -full` for
// the paper-scale runs.
package panorama_test

import (
	"runtime"
	"testing"
	"time"

	"panorama/internal/bench"
)

// benchCfg is the shared quick configuration, trimmed slightly so a
// full -bench=. sweep stays in the minutes range.
func benchCfg() bench.Config {
	cfg := bench.Quick()
	return cfg
}

// BenchmarkTable1aClustering regenerates Table 1a: spectral clustering
// and cluster mapping of all twelve kernels, reporting the average
// combined clustering+mapping seconds per kernel (the paper reports
// 9.23s at full scale on a Xeon Gold).
func BenchmarkTable1aClustering(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.ClusteringSec + r.ClusMapSec
		}
		b.ReportMetric(sum/float64(len(rows)), "s/kernel")
	}
}

// BenchmarkTable1aParallelSpeedup measures the harness's -j scaling on
// the full 12-kernel Table 1a grid: each iteration runs the table once
// serially (-j1) and once with one worker per CPU, and reports the
// wall-clock ratio as the "speedup" metric. On a >= 4-core machine the
// 12 independent kernels keep the pool saturated and the ratio lands
// well above 2x; on fewer cores it degrades gracefully toward 1x.
func BenchmarkTable1aParallelSpeedup(b *testing.B) {
	serial := benchCfg()
	serial.Workers = 1
	parallel := benchCfg()
	parallel.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := bench.Table1a(serial); err != nil {
			b.Fatal(err)
		}
		serialSec := time.Since(t0).Seconds()
		t1 := time.Now()
		if _, err := bench.Table1a(parallel); err != nil {
			b.Fatal(err)
		}
		parallelSec := time.Since(t1).Seconds()
		b.ReportMetric(serialSec/parallelSec, "speedup")
		b.ReportMetric(float64(parallel.Workers), "workers")
	}
}

// BenchmarkTable1bSPRSmall regenerates the measured Table 1b datapoint:
// SPR* on a ~30-node DFG and a 4x4 CGRA (the paper quotes 30s for its
// C++ SPR* at this size).
func BenchmarkTable1bSPRSmall(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 || !rows[len(rows)-1].Measured {
			b.Fatal("missing measured row")
		}
	}
}

// BenchmarkFigure5Imbalance regenerates Figure 5: imbalance factor
// versus number of clusters for the four featured kernels.
func BenchmarkFigure5Imbalance(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var minIF = 1.0
		for _, s := range series {
			for _, v := range s.IF {
				if v < minIF {
					minIF = v
				}
			}
		}
		b.ReportMetric(minIF, "best-IF")
	}
}

// BenchmarkFigure7PanSPR regenerates Figure 7: QoM and compile time of
// SPR* versus Pan-SPR* over all kernels. Reported metrics: average QoM
// of both mappers (paper: Pan-SPR* +22% QoM, 8.7x faster at 16x16).
func BenchmarkFigure7PanSPR(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var baseQ, panQ float64
		for _, r := range rows {
			baseQ += r.BaseQoM
			panQ += r.PanQoM
		}
		b.ReportMetric(baseQ/float64(len(rows)), "base-QoM")
		b.ReportMetric(panQ/float64(len(rows)), "pan-QoM")
	}
}

// BenchmarkFigure8Power regenerates Figure 8: power efficiency of the
// small versus large array under both mappers, reporting the large
// array's average efficiency gain (paper: +68% for 16x16 over 9x9).
func BenchmarkFigure8Power(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var gain float64
		for _, r := range rows {
			gain += r.NormBigBase
		}
		b.ReportMetric(gain/float64(len(rows)), "big-vs-small")
	}
}

// BenchmarkFigure9PanUltraFast regenerates Figure 9: UltraFast versus
// Pan-UltraFast (paper: 2.6x QoM, 4.8x faster compilation).
func BenchmarkFigure9PanUltraFast(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var baseQ, panQ float64
		for _, r := range rows {
			baseQ += r.BaseQoM
			panQ += r.PanQoM
		}
		b.ReportMetric(baseQ/float64(len(rows)), "uf-QoM")
		b.ReportMetric(panQ/float64(len(rows)), "pan-QoM")
	}
}

// BenchmarkAblationClustering compares spectral clustering against the
// structure-blind BFS partitioner (DESIGN.md ablation 1).
func BenchmarkAblationClustering(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationClustering(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var with, abl float64
		for _, r := range rows {
			with += r.WithValue
			abl += r.AblatedValue
		}
		b.ReportMetric(with/float64(len(rows)), "spectral-interE")
		b.ReportMetric(abl/float64(len(rows)), "bfs-interE")
	}
}

// BenchmarkAblationMatchingCut compares the cluster mapping with and
// without the fork-minimisation constraints (DESIGN.md ablation 2).
func BenchmarkAblationMatchingCut(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationMatchingCut(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var with, abl float64
		for _, r := range rows {
			with += r.WithValue
			abl += r.AblatedValue
		}
		b.ReportMetric(with/float64(len(rows)), "cut-cost")
		b.ReportMetric(abl/float64(len(rows)), "nocut-cost")
	}
}

// BenchmarkAblationTop3 compares guiding with the best of three
// balanced partitions against only the single most balanced one
// (DESIGN.md ablation 3).
func BenchmarkAblationTop3(b *testing.B) {
	cfg := benchCfg()
	cfg.Fig5Kernels = []string{"fir", "cordic"} // heavy: trims to two kernels
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationTop3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var with, abl float64
		for _, r := range rows {
			with += r.WithValue
			abl += r.AblatedValue
		}
		b.ReportMetric(with/float64(len(rows)), "top3-QoM")
		b.ReportMetric(abl/float64(len(rows)), "top1-QoM")
	}
}
