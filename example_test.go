package panorama_test

import (
	"fmt"

	"panorama"
)

// ExampleKernel shows how to obtain one of the paper's benchmark DFGs.
func ExampleKernel() {
	g, err := panorama.Kernel("fir", 1.0)
	if err != nil {
		panic(err)
	}
	stats := g.ComputeStats()
	fmt.Println(stats.Name, stats.Nodes > 200, stats.MemOps > 0)
	// Output: fir true true
}

// ExampleNewDFG builds a custom accumulator kernel by hand.
func ExampleNewDFG() {
	g := panorama.NewDFG("acc")
	x := g.AddNode(panorama.OpLoad, "x")
	acc := g.AddNode(panorama.OpAdd, "acc")
	out := g.AddNode(panorama.OpStore, "out")
	g.AddEdge(x, acc)
	g.AddEdgeDist(acc, acc, 1) // carried dependency
	g.AddEdge(acc, out)
	if err := g.Freeze(); err != nil {
		panic(err)
	}
	fmt.Println(g.NumNodes(), g.RecMII())
	// Output: 3 1
}

// ExampleMapSPR maps a tiny custom kernel with the SPR* baseline.
func ExampleMapSPR() {
	g := panorama.NewDFG("tiny")
	a := g.AddNode(panorama.OpLoad, "")
	b := g.AddNode(panorama.OpMul, "")
	c := g.AddNode(panorama.OpStore, "")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	if err := g.Freeze(); err != nil {
		panic(err)
	}
	res, err := panorama.MapSPR(g, panorama.NewCGRA4x4(), 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Lower.Success, res.Lower.II >= res.Lower.MII)
	// Output: true true
}
